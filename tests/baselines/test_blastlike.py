"""Tests for the BLAST-like seed-and-extend heuristic."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.baselines import BlastLikeSearcher, BlastParams
from repro.sequence import Database, Sequence, random_protein
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()


def planted_pair(rng, core_len=60, q_flank=20, d_flank=50, mutate=0):
    """A query and subject sharing a (possibly mutated) core."""
    core = random_protein(core_len, rng, id="core")
    core_mut = core.codes.copy()
    if mutate:
        pos = rng.choice(core_len, size=mutate, replace=False)
        core_mut[pos] = rng.integers(0, 20, size=mutate)
    q = Sequence(
        "q",
        np.concatenate(
            [random_protein(q_flank, rng).codes, core.codes,
             random_protein(q_flank, rng).codes]
        ),
    )
    d = Sequence(
        "d",
        np.concatenate(
            [random_protein(d_flank, rng).codes, core_mut,
             random_protein(d_flank, rng).codes]
        ),
    )
    return q, d


class TestHeuristicQuality:
    def test_finds_exact_homolog(self):
        rng = np.random.default_rng(0)
        q, d = planted_pair(rng)
        searcher = BlastLikeSearcher(q)
        score = searcher.score_sequence(d.codes)
        exact = sw_score_scalar(q, d, BLOSUM62, GP)
        assert score > 0
        assert score <= exact  # heuristic never overestimates
        assert score >= 0.8 * exact

    def test_finds_mutated_homolog(self):
        rng = np.random.default_rng(1)
        q, d = planted_pair(rng, core_len=80, mutate=8)
        score = BlastLikeSearcher(q).score_sequence(d.codes)
        exact = sw_score_scalar(q, d, BLOSUM62, GP)
        assert score > 0.5 * exact

    def test_unrelated_scores_low(self):
        rng = np.random.default_rng(2)
        q = random_protein(100, rng, id="q")
        scores = [
            BlastLikeSearcher(q).score_sequence(random_protein(150, rng).codes)
            for _ in range(5)
        ]
        # Random sequences rarely trigger two-hit extensions at all.
        assert max(scores) < 40

    def test_never_exceeds_exact(self):
        """The heuristic only explores genuine alignments, so it is a
        lower bound on the optimum — the 'no optimality guarantee' trade
        of the paper's introduction, from the safe side."""
        rng = np.random.default_rng(3)
        q = random_protein(80, rng, id="q")
        searcher = BlastLikeSearcher(q)
        for _ in range(10):
            d = random_protein(int(rng.integers(10, 200)), rng)
            assert searcher.score_sequence(d.codes) <= sw_score_scalar(
                q, d, BLOSUM62, GP
            )

    def test_can_miss_weak_similarity(self):
        """And the bound is not tight: some positive-scoring pairs get 0."""
        rng = np.random.default_rng(4)
        q = random_protein(60, rng, id="q")
        searcher = BlastLikeSearcher(q)
        missed = 0
        for _ in range(10):
            d = random_protein(60, rng)
            exact = sw_score_scalar(q, d, BLOSUM62, GP)
            if exact > 0 and searcher.score_sequence(d.codes) == 0:
                missed += 1
        assert missed > 0  # heuristics miss; that's the point

    def test_search_over_database(self):
        rng = np.random.default_rng(5)
        q, hom = planted_pair(rng)
        decoys = [random_protein(150, rng, id=f"x{i}") for i in range(4)]
        db = Database.from_sequences([hom] + decoys)
        scores = BlastLikeSearcher(q).search(db)
        assert int(np.argmax(scores)) == 0  # the homolog wins

    def test_short_subject(self):
        rng = np.random.default_rng(6)
        q = random_protein(50, rng, id="q")
        assert BlastLikeSearcher(q).score_sequence(
            random_protein(2, rng).codes
        ) == 0


class TestParamsAndValidation:
    def test_query_shorter_than_word(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError, match="word size"):
            BlastLikeSearcher(random_protein(2, rng, id="q"))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            BlastParams(word_size=0)
        with pytest.raises(ValueError):
            BlastParams(xdrop=-1)

    def test_lengths_only_db_rejected(self):
        rng = np.random.default_rng(8)
        q = random_protein(50, rng, id="q")
        db = Database.from_lengths([100, 200])
        with pytest.raises(ValueError):
            BlastLikeSearcher(q).search(db)

    def test_wider_band_never_hurts(self):
        rng = np.random.default_rng(9)
        q, d = planted_pair(rng, core_len=50, mutate=5)
        narrow = BlastLikeSearcher(q, params=BlastParams(band=4)).score_sequence(
            d.codes
        )
        wide = BlastLikeSearcher(q, params=BlastParams(band=32)).score_sequence(
            d.codes
        )
        assert wide >= narrow
