"""Tests for the Farrar striped SIMD implementation and the SWPS3 model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty
from repro.baselines import (
    StripedProfile,
    Swps3Model,
    XEON_E5345,
    striped_smith_waterman,
    swps3_time_seconds,
)
from repro.baselines.sse import StripedCounts
from repro.sequence import Database, SWISSPROT_PROFILE, random_protein
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()


class TestStripedCorrectness:
    def test_exact_on_random_pairs(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            m, n = int(rng.integers(1, 120)), int(rng.integers(1, 120))
            q, d = random_protein(m, rng), random_protein(n, rng)
            s, _ = striped_smith_waterman(q, d, BLOSUM62, GP)
            assert s == sw_score_scalar(q, d, BLOSUM62, GP), (m, n)

    def test_exact_under_cheap_gaps(self):
        """Cheap gap models maximize lazy-F pressure (gaps cross lanes)."""
        rng = np.random.default_rng(1)
        gp = GapPenalty(3, 1)
        for _ in range(20):
            m, n = int(rng.integers(1, 100)), int(rng.integers(1, 100))
            q, d = random_protein(m, rng), random_protein(n, rng)
            s, _ = striped_smith_waterman(q, d, BLOSUM62, gp, lanes=4)
            assert s == sw_score_scalar(q, d, BLOSUM62, gp), (m, n)

    @pytest.mark.parametrize("lanes", [1, 2, 4, 8, 16])
    def test_lane_count_never_changes_scores(self, lanes):
        rng = np.random.default_rng(lanes)
        q, d = random_protein(90, rng), random_protein(70, rng)
        s, _ = striped_smith_waterman(q, d, BLOSUM62, GP, lanes=lanes)
        assert s == sw_score_scalar(q, d, BLOSUM62, GP)

    @settings(max_examples=30, deadline=None)
    @given(
        q=st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=40),
        d=st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=40),
    )
    def test_property_agreement(self, q, d):
        s, _ = striped_smith_waterman(q, d, BLOSUM62, GP)
        assert s == sw_score_scalar(q, d, BLOSUM62, GP)

    def test_profile_reuse(self):
        rng = np.random.default_rng(2)
        q = random_protein(50, rng)
        prof = StripedProfile(q.codes, BLOSUM62)
        d = random_protein(40, rng)
        s1, _ = striped_smith_waterman(q, d, BLOSUM62, GP, profile=prof)
        s2, _ = striped_smith_waterman(q, d, BLOSUM62, GP)
        assert s1 == s2

    def test_profile_mismatch_rejected(self):
        rng = np.random.default_rng(3)
        prof = StripedProfile(random_protein(50, rng).codes, BLOSUM62)
        with pytest.raises(ValueError, match="profile"):
            striped_smith_waterman(
                random_protein(60, rng), random_protein(40, rng),
                BLOSUM62, GP, profile=prof,
            )

    def test_counts_structure(self):
        rng = np.random.default_rng(4)
        q, d = random_protein(40, rng), random_protein(30, rng)
        _, c = striped_smith_waterman(q, d, BLOSUM62, GP)
        assert c.cells == 40 * 30
        assert c.columns == 30
        assert c.segment_length == 5  # ceil(40/8)
        assert c.main_rows == 5 * 30
        assert c.lazy_rows >= 0
        assert 0 <= c.lazy_fraction < 1
        assert c.vector_ops > 0

    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            StripedProfile(np.zeros(3, np.uint8), BLOSUM62, lanes=0)


class TestCpuCostModel:
    def test_time_positive_and_scales(self):
        c = StripedCounts(cells=10_000, columns=100, segment_length=10,
                          main_rows=1000, lazy_rows=50)
        t4 = swps3_time_seconds(c, XEON_E5345)
        t1 = swps3_time_seconds(c, XEON_E5345, threads=1)
        assert t1 == pytest.approx(4 * t4, rel=0.05)

    def test_lazy_rows_cost_extra(self):
        base = StripedCounts(10_000, 100, 10, 1000, 0)
        lazy = StripedCounts(10_000, 100, 10, 1000, 500)
        assert swps3_time_seconds(lazy) > swps3_time_seconds(base)

    def test_validation(self):
        c = StripedCounts(1, 1, 1, 1, 0)
        with pytest.raises(ValueError):
            swps3_time_seconds([], XEON_E5345)
        with pytest.raises(ValueError):
            swps3_time_seconds(c, XEON_E5345, threads=5)
        with pytest.raises(ValueError):
            swps3_time_seconds(c, XEON_E5345, n_sequences=0)


class TestSwps3Model:
    @pytest.fixture(scope="class")
    def swissprot(self):
        rng = np.random.default_rng(6)
        return SWISSPROT_PROFILE.build(rng, scale=0.02)

    def test_report_magnitude(self, swissprot):
        """Figure 7: SWPS3 on 4 Xeon cores sits well below CUDASW++."""
        rng = np.random.default_rng(7)
        rep = Swps3Model().report(567, swissprot, rng, sample_rows=20_000)
        assert 3.0 < rep.gcups < 12.0
        assert rep.total_cells == 567 * swissprot.total_residues
        assert 0 <= rep.lazy_fraction < 0.2

    def test_search_exact_scores(self):
        rng = np.random.default_rng(8)
        from repro.sequence import Sequence

        seqs = [Sequence.random(f"s{i}", 30 + 11 * i, rng) for i in range(5)]
        db = Database.from_sequences(seqs)
        q = random_protein(45, rng)
        scores, counts = Swps3Model().search(q, db)
        assert len(counts) == 5
        for i, s in enumerate(seqs):
            assert scores[i] == sw_score_scalar(q, s, BLOSUM62, GP)

    def test_report_validation(self, swissprot):
        rng = np.random.default_rng(9)
        with pytest.raises(ValueError):
            Swps3Model().report(0, swissprot, rng)
        with pytest.raises(ValueError):
            Swps3Model().report(100, swissprot, rng, sample_rows=0)

    def test_search_requires_residues(self, swissprot):
        rng = np.random.default_rng(10)
        with pytest.raises(ValueError):
            Swps3Model().search(random_protein(30, rng), swissprot)
