"""SWPS3 scale model over materialized (residue-bearing) databases."""

import numpy as np
import pytest

from repro.baselines import Swps3Model
from repro.sequence import Database, Sequence


@pytest.fixture(scope="module")
def materialized_db():
    rng = np.random.default_rng(0)
    seqs = [Sequence.random(f"s{i}", int(n), rng)
            for i, n in enumerate(rng.integers(100, 600, size=40))]
    return Database.from_sequences(seqs)


def test_report_samples_real_residues(materialized_db):
    rng = np.random.default_rng(1)
    rep = Swps3Model().report(300, materialized_db, rng, sample_rows=5_000)
    assert rep.total_cells == 300 * materialized_db.total_residues
    assert rep.gcups > 0
    assert rep.sampled_columns > 0


def test_report_deterministic_under_seed(materialized_db):
    r1 = Swps3Model().report(
        300, materialized_db, np.random.default_rng(7), sample_rows=5_000
    )
    r2 = Swps3Model().report(
        300, materialized_db, np.random.default_rng(7), sample_rows=5_000
    )
    assert r1.time_seconds == r2.time_seconds
    assert r1.lazy_fraction == r2.lazy_fraction


def test_lazy_fraction_grows_with_cheaper_gaps(materialized_db):
    """Cheap gaps make lazy-F corrections more frequent — the mechanism is
    visible through the sampled workload."""
    from repro.alphabet import GapPenalty

    rng1 = np.random.default_rng(2)
    rng2 = np.random.default_rng(2)
    strict = Swps3Model(gaps=GapPenalty(20, 1)).report(
        200, materialized_db, rng1, sample_rows=5_000
    )
    cheap = Swps3Model(gaps=GapPenalty(2, 1)).report(
        200, materialized_db, rng2, sample_rows=5_000
    )
    assert cheap.lazy_fraction > strict.lazy_fraction
