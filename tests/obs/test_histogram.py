"""Unit tests for the fixed-bucket histogram layer."""

import math

import pytest

from repro.obs import (
    BUCKET_SCHEMES,
    DEFAULT_BUCKETS,
    Histogram,
    HistogramRegistry,
    bucket_scheme,
)


class TestBucketSchemes:
    def test_registered_name_gets_its_scheme(self):
        assert bucket_scheme("engine.sweep.group_seconds") == BUCKET_SCHEMES[
            "engine.sweep.group_seconds"
        ]

    def test_unregistered_name_gets_default(self):
        assert bucket_scheme("made.up.metric") == DEFAULT_BUCKETS

    def test_all_schemes_strictly_increasing_and_finite(self):
        for name, bounds in BUCKET_SCHEMES.items():
            assert all(
                lo < hi for lo, hi in zip(bounds, bounds[1:])
            ), name
            assert all(math.isfinite(b) for b in bounds), name


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        # bucket i counts values <= bounds[i] (Prometheus `le` semantics);
        # a value exactly on a boundary lands in that boundary's bucket.
        h = Histogram("t", (1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)
        assert h.max == 99.0

    def test_empty_histogram_quantiles_are_nan(self):
        h = Histogram("t", (1.0,))
        assert math.isnan(h.p50)
        assert math.isnan(h.p95)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("t", (0.0, 10.0))
        for _ in range(100):
            h.observe(5.0)
        # All mass in (0, 10]: any quantile interpolates inside it.
        assert 0.0 < h.p50 <= 10.0
        assert h.quantile(1.0) <= 10.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("t", (1.0,))
        h.observe(50.0)
        h.observe(70.0)
        assert h.p95 == 70.0

    def test_quantile_range_validated(self):
        h = Histogram("t", (1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_adds_counts(self):
        a = Histogram("t", (1.0, 2.0))
        b = Histogram("t", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.bucket_counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)
        assert a.max == 9.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("t", (1.0, 2.0))
        b = Histogram("t", (1.0, 3.0))
        with pytest.raises(ValueError, match="boundaries differ"):
            a.merge(b)

    def test_serialization_round_trip(self):
        a = Histogram("t", (1.0, 2.0))
        a.observe(0.5)
        a.observe(5.0)
        snapshot = a.as_dict()
        restored = Histogram.from_dict("t", snapshot)
        assert restored.as_dict() == snapshot

    def test_empty_histogram_serializes_null_max(self):
        assert Histogram("t", (1.0,)).as_dict()["max"] is None

    def test_from_dict_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram.from_dict(
                "t",
                {"bounds": [1.0], "bucket_counts": [1], "count": 1,
                 "sum": 0.5, "max": 0.5},
            )

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("t", ())
        with pytest.raises(ValueError):
            Histogram("t", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", (1.0, math.inf))


class TestHistogramRegistry:
    def test_observe_creates_with_scheme_buckets(self):
        reg = HistogramRegistry()
        reg.observe("engine.sweep.group_seconds", 0.01)
        hist = reg.get("engine.sweep.group_seconds")
        assert hist is not None
        assert hist.bounds == BUCKET_SCHEMES["engine.sweep.group_seconds"]
        assert "engine.sweep.group_seconds" in reg
        assert len(reg) == 1

    def test_merge_dicts_is_the_wire_format(self):
        # Worker side: observe and snapshot.  Parent side: merge_dicts.
        worker = HistogramRegistry()
        worker.observe("engine.pack.group_cells", 5e4)
        worker.observe("engine.pack.group_cells", 2e6)
        parent = HistogramRegistry()
        parent.observe("engine.pack.group_cells", 1e3)
        parent.merge_dicts(worker.as_dict())
        merged = parent.get("engine.pack.group_cells")
        assert merged.count == 3
        assert merged.sum == pytest.approx(1e3 + 5e4 + 2e6)

    def test_as_dict_sorted_by_name(self):
        reg = HistogramRegistry()
        reg.observe("b.metric", 1.0)
        reg.observe("a.metric", 1.0)
        assert list(reg.as_dict()) == ["a.metric", "b.metric"]
