"""The benchmark-history perf-regression gate, including the acceptance
case: a synthetic 30% throughput drop must fail the gate."""

import json

import pytest

from repro.obs import perfgate
from repro.obs.perfgate import (
    append_history,
    gate,
    history_entry,
    host_speed_factor,
    next_run_index,
    read_history,
)


def entry(engine="striped", run_index=1, mcups=500.0, *, host_factor=1.0,
          sequences=1000, query_length=120):
    return history_entry(
        engine=engine,
        sequences=sequences,
        query_length=query_length,
        mcups=mcups,
        run_index=run_index,
        host_factor=host_factor,
    )


def write_history(path, entries):
    return append_history(path, entries)


class TestHistoryFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        entries = [entry(run_index=1), entry(run_index=2, mcups=510.0)]
        write_history(path, entries)
        assert read_history(path) == entries

    def test_append_extends(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        write_history(path, [entry(run_index=1)])
        write_history(path, [entry(run_index=2)])
        assert [e["run_index"] for e in read_history(path)] == [1, 2]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "nope.jsonl") == []

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        write_history(path, [entry(run_index=1)])
        with path.open("a") as fh:
            fh.write("{truncated half-written li\n")
            fh.write(json.dumps({"schema": "something.else"}) + "\n")
            fh.write("\n")
        assert len(read_history(path)) == 1

    def test_next_run_index_monotonic(self):
        assert next_run_index([]) == 1
        assert next_run_index([entry(run_index=3), entry(run_index=7)]) == 8

    def test_normalized_mcups_applies_host_factor(self):
        e = entry(mcups=400.0, host_factor=1.5)
        assert e["normalized_mcups"] == pytest.approx(600.0)


class TestHostSpeedFactor:
    def test_positive_and_stable(self):
        f1 = host_speed_factor(best_of=1)
        assert f1 > 0.0
        # Best-of-N can only improve (shrink) the measured time.
        assert host_speed_factor(best_of=2) <= f1 * 1.5


class TestGate:
    def test_passes_on_steady_history(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0),
            entry(run_index=2, mcups=490.0),
            entry(run_index=3, mcups=505.0),
        ])
        outcome = gate(path)
        assert outcome.passed
        assert [v.status for v in outcome.verdicts] == ["ok"]
        assert outcome.render().endswith("PASS")

    def test_synthetic_30pct_drop_fails(self, tmp_path):
        # The acceptance case: drop the newest run 30% below baseline.
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0),
            entry(run_index=2, mcups=500.0),
            entry(run_index=3, mcups=350.0),
        ])
        outcome = gate(path, tolerance=0.2)
        assert not outcome.passed
        v = outcome.verdicts[0]
        assert v.status == "regressed"
        assert v.ratio == pytest.approx(0.7)
        assert outcome.render().endswith("FAIL")

    def test_drop_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0),
            entry(run_index=2, mcups=450.0),
        ])
        assert gate(path, tolerance=0.2).passed

    def test_median_baseline_resists_one_slow_run(self, tmp_path):
        # One historically slow run must not drag the baseline down to
        # where a real regression passes.
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0),
            entry(run_index=2, mcups=100.0),
            entry(run_index=3, mcups=505.0),
            entry(run_index=4, mcups=340.0),
        ])
        outcome = gate(path, tolerance=0.2)
        assert not outcome.passed
        assert outcome.verdicts[0].baseline == pytest.approx(500.0)

    def test_new_key_skipped_without_baseline(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        write_history(path, [entry(run_index=1)])
        outcome = gate(path)
        assert outcome.passed
        assert [v.status for v in outcome.verdicts] == ["skipped"]
        assert "SKIP" in outcome.render()

    def test_key_absent_from_newest_run_not_gated(self, tmp_path):
        # e.g. scalar is skipped in the CI smoke run: its history stays
        # but it produces no verdict at all.
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry("scalar", run_index=1, mcups=10.0),
            entry("scalar", run_index=2, mcups=1.0),  # would regress
            entry("striped", run_index=1, mcups=500.0),
            entry("striped", run_index=2, mcups=500.0),
            entry("striped", run_index=3, mcups=500.0),
        ])
        outcome = gate(path)
        assert outcome.passed
        assert [v.engine for v in outcome.verdicts] == ["striped"]

    def test_keys_are_per_geometry(self, tmp_path):
        # Same engine at a different database size gates independently.
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, sequences=50, mcups=400.0),
            entry(run_index=1, sequences=1000, mcups=500.0),
            entry(run_index=2, sequences=50, mcups=400.0),
            entry(run_index=2, sequences=1000, mcups=200.0),
        ])
        outcome = gate(path, tolerance=0.2)
        statuses = {
            (v.sequences, v.status) for v in outcome.verdicts
        }
        assert statuses == {(50, "ok"), (1000, "regressed")}

    def test_host_normalization_rescues_slow_host(self, tmp_path):
        # Half the raw MCUPs on a host measured twice as slow is not a
        # regression once normalized.
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0, host_factor=1.0),
            entry(run_index=2, mcups=250.0, host_factor=2.0),
        ])
        assert gate(path, tolerance=0.2).passed

    def test_empty_history_errors(self, tmp_path):
        outcome = gate(tmp_path / "none.jsonl")
        assert not outcome.passed
        assert outcome.errors

    def test_tolerance_validated(self, tmp_path):
        with pytest.raises(ValueError):
            gate(tmp_path / "x.jsonl", tolerance=1.0)


class TestCli:
    def _seed(self, tmp_path, mcups_latest):
        path = tmp_path / "hist.jsonl"
        write_history(path, [
            entry(run_index=1, mcups=500.0),
            entry(run_index=2, mcups=500.0),
            entry(run_index=3, mcups=mcups_latest),
        ])
        return path

    def test_repro_bench_gate_passes(self, tmp_path, capsys):
        from repro.cli import main

        path = self._seed(tmp_path, 495.0)
        assert main(["bench", "gate", "--history", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_repro_bench_gate_fails_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        path = self._seed(tmp_path, 350.0)
        assert main(["bench", "gate", "--history", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_perf_gate_tool_mirrors_cli(self, tmp_path):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        repo_root = pathlib.Path(repro.__file__).resolve().parents[2]
        env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
        tool = str(repo_root / "tools" / "perf_gate.py")
        path = self._seed(tmp_path, 350.0)
        proc = subprocess.run(
            [sys.executable, tool, "--history", str(path)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout
        proc = subprocess.run(
            [sys.executable, tool, "--history", str(path),
             "--tolerance", "0.5"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0

    def test_default_tolerance_matches_module(self):
        assert perfgate.DEFAULT_TOLERANCE == 0.2
        assert perfgate.DEFAULT_MIN_BASELINE == 1
