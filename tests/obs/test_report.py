"""Unit tests for the RunReport document."""

import json
import math

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    RunReport,
    collect,
    desanitize_metric_name,
    format_le,
    sanitize_metric_name,
)


def _session():
    with collect("full") as instr:
        with instr.span("search"):
            with instr.span("pack"):
                instr.count("engine.pack.residues", 100)
            with instr.span("sweep"):
                instr.count("engine.sweep.useful_cells", 5000)
                instr.observe("engine.sweep.group_seconds", 0.02)
                instr.observe("engine.sweep.group_seconds", 0.4)
        with instr.span("rank"):
            pass
    return instr


class TestRunReport:
    def test_schema_and_roundtrip(self, tmp_path):
        report = RunReport.from_instrumentation(
            _session(), meta={"query_id": "Q1"}
        )
        doc = report.to_dict()
        assert doc["schema"] == "repro.run_report"
        assert doc["schema_version"] == SCHEMA_VERSION == 2
        assert doc["collect"] == "full"
        assert doc["counters"]["engine.pack.residues"] == 100
        assert doc["meta"]["query_id"] == "Q1"
        assert doc["engine"] is None and doc["model"] is None
        # Schema v2 fields: process id, histograms, worker lanes.
        assert doc["pid"] > 0
        assert doc["worker_lanes"] == []
        hist = doc["histograms"]["engine.sweep.group_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.42)
        assert len(hist["bucket_counts"]) == len(hist["bounds"]) + 1

        path = report.write(tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        assert loaded == doc

    def test_span_seconds_paths(self):
        report = RunReport.from_instrumentation(_session())
        seconds = report.span_seconds()
        assert set(seconds) == {
            "search",
            "search/pack",
            "search/sweep",
            "rank",
        }
        assert all(v >= 0.0 for v in seconds.values())

    def test_counters_mode_has_empty_spans(self):
        with collect("counters") as instr:
            instr.count("x", 1)
        report = RunReport.from_instrumentation(instr)
        assert report.spans == ()
        assert report.counters == {"x": 1}
        assert "counters" in report.render_profile()

    def test_render_profile_sections(self):
        report = RunReport.from_instrumentation(_session())
        text = report.render_profile()
        assert "== span tree ==" in text
        assert "== counters ==" in text
        assert "== histograms ==" in text
        assert "search" in text and "rank" in text
        assert "engine.pack.residues" in text
        assert "engine.sweep.group_seconds" in text
        assert "p95" in text

    def test_render_profile_with_engine_section(self):
        from repro.engine import EngineReport

        er = EngineReport(
            group_size=4,
            workers=1,
            group_sizes=(2,),
            group_max_lengths=(10,),
            group_efficiencies=(0.75,),
            residues=15,
            padded_cells=20,
        )
        report = RunReport.from_instrumentation(
            _session(), engine_report=er
        )
        assert report.engine["padding_efficiency"] == pytest.approx(0.75)
        assert "engine packing" in report.render_profile()

    def test_model_section_from_search_report(self):
        import numpy as np

        from repro.app import CudaSW
        from repro.sequence.database import Database

        db = Database.from_lengths(
            np.array([100, 200, 4000], dtype=np.int64), name="d"
        )
        app = CudaSW()
        sr = app.predict(150, db)
        report = RunReport.from_instrumentation(
            _session(), search_report=sr
        )
        m = report.model
        assert m["query_length"] == 150
        assert m["n_intra_sequences"] == 1
        assert m["total_cells"] == 150 * 4300
        assert m["intra_global_transactions"] > 0
        json.dumps(report.to_dict())  # fully serializable

    def test_prometheus_exposition(self):
        report = RunReport.from_instrumentation(_session())
        text = report.to_prometheus()
        assert "# TYPE repro_counter_total counter" in text
        assert (
            'repro_counter_total{name="engine.pack.residues"} 100' in text
        )
        assert "# TYPE repro_span_seconds gauge" in text
        assert 'repro_span_seconds{path="search/pack"}' in text
        assert text.endswith("\n")

    def test_prometheus_histogram_family(self):
        report = RunReport.from_instrumentation(_session())
        text = report.to_prometheus()
        assert "# TYPE repro_histogram histogram" in text
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_histogram_bucket")
            and 'name="engine.sweep.group_seconds"' in line
        ]
        # Cumulative counts, ending at the +Inf catch-all == _count.
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 2
        assert (
            'repro_histogram_count{name="engine.sweep.group_seconds"} 2'
            in text
        )
        sum_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_histogram_sum")
            and 'name="engine.sweep.group_seconds"' in line
        )
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(0.42)

    def test_prometheus_le_labels_parse_back_to_bounds(self):
        from repro.obs import bucket_scheme

        report = RunReport.from_instrumentation(_session())
        text = report.to_prometheus()
        les = [
            line.split('le="')[1].split('"')[0]
            for line in text.splitlines()
            if line.startswith("repro_histogram_bucket")
        ]
        bounds = list(bucket_scheme("engine.sweep.group_seconds"))
        assert les[-1] == "+Inf"
        assert [float(le) for le in les[:-1]] == bounds

    def test_prometheus_custom_prefix(self):
        report = RunReport.from_instrumentation(_session())
        assert "cudasw_counter_total" in report.to_prometheus(
            prefix="cudasw"
        )


class TestTraceExport:
    def test_trace_document_shape(self, tmp_path):
        report = RunReport.from_instrumentation(_session())
        doc = report.to_trace_dict()
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} >= {"search", "pack", "rank"}
        for e in complete:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        # Parent-only session: a single pid lane, named by metadata.
        assert {e["pid"] for e in complete} == {report.pid}
        meta_events = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta_events)

    def test_trace_children_nest_within_parents(self):
        report = RunReport.from_instrumentation(_session())
        events = [
            e
            for e in report.to_trace_dict()["traceEvents"]
            if e["ph"] == "X"
        ]
        search = next(e for e in events if e["name"] == "search")
        pack = next(e for e in events if e["name"] == "pack")
        assert search["ts"] <= pack["ts"]
        assert pack["ts"] + pack["dur"] <= search["ts"] + search["dur"] + 1e-3

    def test_write_trace_is_valid_json(self, tmp_path):
        report = RunReport.from_instrumentation(_session())
        path = report.write_trace(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == report.to_trace_dict()
        assert loaded["otherData"]["collect"] == "full"


class TestSanitizeMetricName:
    def test_replaces_illegal_characters(self):
        assert (
            sanitize_metric_name("kernel.intra_improved(T=256,H=4).cells")
            == "kernel_intra__improved_T_256_H_4__cells"
        )

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_injective_on_dot_vs_underscore(self):
        # 'a.b' and 'a_b' must not collide into one Prometheus series.
        assert sanitize_metric_name("a.b") != sanitize_metric_name("a_b")

    def test_desanitize_round_trips_registry_names(self):
        for name in (
            "engine.sweep.group_seconds",
            "engine.pack.group_efficiency",
            "engine.striped.lazy_f_rounds",
            "engine.executor.retry_delay_seconds",
            "engine.mem.sweep_parallel.peak_bytes",
        ):
            assert desanitize_metric_name(sanitize_metric_name(name)) == name


class TestFormatLe:
    def test_round_trips_to_exact_bound(self):
        for bound in (0.005, 0.25, 1.0, 2.5, 1000.0, 1e6, 0.1 + 0.2):
            assert float(format_le(bound)) == bound

    def test_integral_bounds_render_without_point(self):
        assert format_le(1000.0) == "1000"
        assert format_le(1.0) == "1"

    def test_infinities(self):
        assert format_le(math.inf) == "+Inf"
        assert format_le(-math.inf) == "-Inf"
