"""Unit tests for the RunReport document."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    RunReport,
    collect,
    sanitize_metric_name,
)


def _session():
    with collect("full") as instr:
        with instr.span("search"):
            with instr.span("pack"):
                instr.count("engine.pack.residues", 100)
            with instr.span("sweep"):
                instr.count("engine.sweep.useful_cells", 5000)
        with instr.span("rank"):
            pass
    return instr


class TestRunReport:
    def test_schema_and_roundtrip(self, tmp_path):
        report = RunReport.from_instrumentation(
            _session(), meta={"query_id": "Q1"}
        )
        doc = report.to_dict()
        assert doc["schema"] == "repro.run_report"
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["collect"] == "full"
        assert doc["counters"]["engine.pack.residues"] == 100
        assert doc["meta"]["query_id"] == "Q1"
        assert doc["engine"] is None and doc["model"] is None

        path = report.write(tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        assert loaded == doc

    def test_span_seconds_paths(self):
        report = RunReport.from_instrumentation(_session())
        seconds = report.span_seconds()
        assert set(seconds) == {
            "search",
            "search/pack",
            "search/sweep",
            "rank",
        }
        assert all(v >= 0.0 for v in seconds.values())

    def test_counters_mode_has_empty_spans(self):
        with collect("counters") as instr:
            instr.count("x", 1)
        report = RunReport.from_instrumentation(instr)
        assert report.spans == ()
        assert report.counters == {"x": 1}
        assert "counters" in report.render_profile()

    def test_render_profile_sections(self):
        report = RunReport.from_instrumentation(_session())
        text = report.render_profile()
        assert "== span tree ==" in text
        assert "== counters ==" in text
        assert "search" in text and "rank" in text
        assert "engine.pack.residues" in text

    def test_render_profile_with_engine_section(self):
        from repro.engine import EngineReport

        er = EngineReport(
            group_size=4,
            workers=1,
            group_sizes=(2,),
            group_max_lengths=(10,),
            group_efficiencies=(0.75,),
            residues=15,
            padded_cells=20,
        )
        report = RunReport.from_instrumentation(
            _session(), engine_report=er
        )
        assert report.engine["padding_efficiency"] == pytest.approx(0.75)
        assert "engine packing" in report.render_profile()

    def test_model_section_from_search_report(self):
        import numpy as np

        from repro.app import CudaSW
        from repro.sequence.database import Database

        db = Database.from_lengths(
            np.array([100, 200, 4000], dtype=np.int64), name="d"
        )
        app = CudaSW()
        sr = app.predict(150, db)
        report = RunReport.from_instrumentation(
            _session(), search_report=sr
        )
        m = report.model
        assert m["query_length"] == 150
        assert m["n_intra_sequences"] == 1
        assert m["total_cells"] == 150 * 4300
        assert m["intra_global_transactions"] > 0
        json.dumps(report.to_dict())  # fully serializable

    def test_prometheus_exposition(self):
        report = RunReport.from_instrumentation(_session())
        text = report.to_prometheus()
        assert "# TYPE repro_counter_total counter" in text
        assert (
            'repro_counter_total{name="engine.pack.residues"} 100' in text
        )
        assert "# TYPE repro_span_seconds gauge" in text
        assert 'repro_span_seconds{path="search/pack"}' in text
        assert text.endswith("\n")

    def test_prometheus_custom_prefix(self):
        report = RunReport.from_instrumentation(_session())
        assert "cudasw_counter_total" in report.to_prometheus(
            prefix="cudasw"
        )


class TestSanitizeMetricName:
    def test_replaces_illegal_characters(self):
        assert (
            sanitize_metric_name("kernel.intra_improved(T=256,H=4).cells")
            == "kernel_intra_improved_T_256_H_4__cells"
        )

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"
