"""Unit tests for the counter registry."""

import threading

import pytest

from repro.obs import CounterRegistry


class TestCounterRegistry:
    def test_add_and_get(self):
        reg = CounterRegistry()
        reg.add("a.b", 3)
        reg.add("a.b", 4)
        reg.add("a.c")
        assert reg.get("a.b") == 7
        assert reg.get("a.c") == 1
        assert reg.get("missing") == 0
        assert reg.get("missing", 42) == 42

    def test_contains_len_iter(self):
        reg = CounterRegistry()
        reg.add("x", 1)
        reg.add("y", 2)
        assert "x" in reg and "z" not in reg
        assert len(reg) == 2
        assert sorted(reg) == ["x", "y"]

    def test_rejects_negative_and_empty(self):
        reg = CounterRegistry()
        with pytest.raises(ValueError):
            reg.add("x", -1)
        with pytest.raises(ValueError):
            reg.add("", 1)

    def test_coerces_value_to_int(self):
        import numpy as np

        reg = CounterRegistry()
        reg.add("np", np.int64(5))
        assert reg.get("np") == 5
        assert type(reg.as_dict()["np"]) is int

    def test_merge(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.add("shared", 1)
        b.add("shared", 2)
        b.add("only_b", 3)
        a.merge(b)
        assert a.as_dict() == {"shared": 3, "only_b": 3}

    def test_namespace(self):
        reg = CounterRegistry()
        reg.add("engine.pack.groups", 2)
        reg.add("engine.packing_other", 5)  # not under engine.pack.
        reg.add("engine.pack", 1)
        reg.add("kernel.x", 9)
        assert reg.namespace("engine.pack") == {
            "engine.pack": 1,
            "engine.pack.groups": 2,
        }

    def test_as_dict_sorted_snapshot(self):
        reg = CounterRegistry()
        reg.add("b", 1)
        reg.add("a", 1)
        snap = reg.as_dict()
        assert list(snap) == ["a", "b"]
        reg.add("c", 1)
        assert "c" not in snap  # snapshot, not a view

    def test_render(self):
        reg = CounterRegistry()
        assert "no counters" in reg.render()
        reg.add("cells", 1234567)
        assert "1,234,567" in reg.render()

    def test_thread_safety(self):
        reg = CounterRegistry()

        def worker():
            for _ in range(1000):
                reg.add("n", 1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.get("n") == 8000
