"""Unit tests for the collect()/current() activation context."""

import pytest

from repro import obs
from repro.cuda.counts import KernelCounts
from repro.obs import NO_OP, Instrumentation, collect, current


class TestCurrent:
    def test_default_is_noop(self):
        assert current() is NO_OP
        assert not current().enabled

    def test_noop_operations_are_inert(self):
        NO_OP.count("anything", 5)
        NO_OP.count_kernel("k", KernelCounts(cells=1))
        with NO_OP.span("x") as span:
            assert span is None
        assert NO_OP.counters is None
        assert NO_OP.tracer is None
        assert NO_OP.mode == "off"


class TestCollect:
    def test_full_mode_activates_and_restores(self):
        with collect("full") as instr:
            assert current() is instr
            assert instr.enabled
            assert instr.tracer is not None
        assert current() is NO_OP

    def test_counters_mode_has_no_tracer(self):
        with collect("counters") as instr:
            assert instr.tracer is None
            with instr.span("ignored") as s:
                assert s is None
            instr.count("c", 2)
        assert instr.counters.get("c") == 2

    def test_off_mode_yields_noop(self):
        with collect("off") as instr:
            assert instr is NO_OP
            assert current() is NO_OP

    def test_off_shadows_outer_session(self):
        with collect("counters") as outer:
            with collect("off"):
                current().count("lost", 1)
            current().count("kept", 1)
        assert outer.counters.as_dict() == {"kept": 1}

    def test_nested_sessions_restore_outer(self):
        with collect("counters") as outer:
            with collect("counters") as inner:
                assert current() is inner
            assert current() is outer

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            with collect("verbose"):
                pass
        with pytest.raises(ValueError):
            Instrumentation("off")

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with collect("full"):
                raise RuntimeError("boom")
        assert current() is NO_OP


class TestCountKernel:
    def test_records_table1_ledger(self):
        counts = KernelCounts(
            cells=100,
            global_load_transactions=7,
            global_store_transactions=5,
            wavefront_steps=3,
            idle_thread_steps=2,
        )
        with collect("counters") as instr:
            instr.count_kernel("intra_original(T=256)", counts)
            instr.count_kernel("intra_original(T=256)", counts)
        c = instr.counters.as_dict()
        prefix = "kernel.intra_original(T=256)"
        assert c[f"{prefix}.launches"] == 2
        assert c[f"{prefix}.cells"] == 200
        assert c[f"{prefix}.global_load_transactions"] == 14
        assert c[f"{prefix}.global_store_transactions"] == 10
        assert c[f"{prefix}.global_transactions"] == 24
        assert c[f"{prefix}.wavefront_steps"] == 6
        assert c[f"{prefix}.idle_thread_steps"] == 4

    def test_obs_namespace_exports(self):
        for name in obs.__all__:
            assert hasattr(obs, name)
