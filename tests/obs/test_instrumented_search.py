"""Integration tests: instrumentation wired through the search pipeline.

The acceptance bar for the observability subsystem:

* counter totals agree **bit-exactly** with the engine's own
  :class:`~repro.engine.EngineReport` accounting;
* fanning groups out to worker processes changes no totals (each chunk
  runs under a worker-side session whose registries ship back and merge
  exactly once) and yields pid-tagged worker span lanes;
* the ``collect="off"`` path costs ≤ 2% of search time (measured by
  counting instrumentation call sites and pricing them at the no-op
  singleton's per-call cost).
"""

import contextlib
import json
import time

import numpy as np
import pytest

from repro import obs
from repro.app import CudaSW, search_batch
from repro.engine import FaultPolicy
from repro.obs import NO_OP
from repro.obs import context as obs_context
from repro.sequence import Database, Sequence, random_protein


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(11)
    seqs = [
        Sequence.random(f"s{i}", int(n), rng)
        for i, n in enumerate([30, 45, 60, 61, 90, 120, 150, 200, 201, 400])
    ]
    return Database.from_sequences(seqs)


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(12)
    return random_protein(80, rng, id="q-obs")


class TestBitExactCounters:
    def test_pack_counters_match_engine_report(self, query, db):
        app = CudaSW()
        app.search(query, db, collect="counters")
        run = app.last_run_report
        er = app.last_engine_report
        assert run is not None and er is not None
        c = run.counters
        assert c["engine.pack.residues"] == er.residues
        assert c["engine.pack.padded_cells"] == er.padded_cells
        assert c["engine.pack.groups"] == er.n_groups
        assert c["engine.pack.sequences"] == len(db)
        assert (
            c["engine.pack.pad_waste_cells"]
            == er.padded_cells - er.residues
        )
        # The run report's engine section is the same accounting.
        assert run.engine["residues"] == c["engine.pack.residues"]
        assert run.engine["padded_cells"] == c["engine.pack.padded_cells"]

    def test_sweep_counters_match_cell_arithmetic(self, query, db):
        app = CudaSW()
        app.search(query, db, collect="counters")
        c = app.last_run_report.counters
        er = app.last_engine_report
        m = len(query)
        assert c["engine.sweep.useful_cells"] == m * er.residues
        assert c["engine.sweep.padded_cells"] == m * er.padded_cells
        assert c["engine.sweep.groups"] == er.n_groups
        assert c["engine.sweep.rows"] == m * er.n_groups
        assert c["engine.executor.groups_dispatched"] == er.n_groups

    def test_full_mode_adds_span_tree(self, query, db):
        app = CudaSW()
        app.search(query, db, collect="full")
        run = app.last_run_report
        phases = {p.split("/")[-1] for p in run.span_seconds()}
        assert {
            "search",
            "query_encode",
            "profile_build",
            "pack",
            "fan_out",
            "sweep",
            "score_scatter",
            "model",
        } <= phases

    def test_worker_fanout_totals_identical_to_serial(self, query, db):
        serial = CudaSW()
        serial.search(query, db, collect="counters", workers=1)
        fanned = CudaSW()
        fanned.search(query, db, collect="counters", workers=2)
        a = dict(serial.last_run_report.counters)
        b = dict(fanned.last_run_report.counters)
        # The fan-out bookkeeping differs; the work accounting must not.
        for extra in (
            "engine.executor.worker_round_trips",
            "engine.executor.pool_fallbacks",
            "engine.executor.fanout_demotions",
        ):
            a.pop(extra, None)
            b.pop(extra, None)
        assert a == b

    def test_scores_unaffected_by_collection(self, query, db):
        app = CudaSW()
        base, _ = app.search(query, db)
        for mode in ("counters", "full"):
            got, _ = app.search(query, db, collect=mode)
            np.testing.assert_array_equal(got.scores, base.scores)

    def test_striped_fanout_counters_identical_to_serial(self, query, db):
        # Even the data-dependent striped counters (lazy-F rounds,
        # skipped F columns) must agree: workers score under their own
        # sessions and ship the registries back, so the pooled totals
        # are the serial totals.
        policy = FaultPolicy(chunksize=1)
        serial = CudaSW()
        serial.search(
            query, db, engine="striped", collect="counters",
            workers=1, group_size=4, fault_policy=policy,
        )
        fanned = CudaSW()
        fanned.search(
            query, db, engine="striped", collect="counters",
            workers=2, group_size=4, fault_policy=policy,
        )
        a = dict(serial.last_run_report.counters)
        b = dict(fanned.last_run_report.counters)
        assert b.get("engine.executor.worker_round_trips", 0) > 0
        assert any(k.startswith("engine.striped.") for k in a)
        # Only the scheduling bookkeeping may differ between the paths.
        for extra in (
            "engine.executor.serial_groups",
            "engine.executor.tasks_submitted",
            "engine.executor.worker_round_trips",
            "engine.executor.pool_completed_groups",
            "engine.executor.pool_fallbacks",
            "engine.executor.fanout_demotions",
        ):
            a.pop(extra, None)
            b.pop(extra, None)
        assert a == b


class TestWorkerLanes:
    """The tentpole acceptance search: workers=2, striped engine, full
    collection with memory phases — worker span lanes, populated
    histograms, memory peaks and a loadable Chrome trace."""

    @pytest.fixture(scope="class")
    def run(self, query, db):
        app = CudaSW()
        app.search(
            query, db, engine="striped", collect="full",
            memory_phases=True, workers=2, group_size=4,
            fault_policy=FaultPolicy(chunksize=1),
        )
        report = app.last_run_report
        assert report is not None
        return report

    def test_worker_lane_spans_present(self, run):
        assert run.worker_lanes
        for pid, spans in run.worker_lanes.items():
            assert pid != run.pid
            assert spans
            assert {s.name for s in spans} == {"sweep"}
        busy = run.worker_lane_seconds()
        assert all(t > 0.0 for lane in busy.values() for t in lane.values())

    def test_registered_histograms_populated(self, run):
        populated = {
            name
            for name, snap in run.histograms.items()
            if snap["count"] > 0
        }
        assert {
            "engine.sweep.group_seconds",
            "engine.pack.group_cells",
            "engine.pack.group_efficiency",
            "engine.striped.lazy_f_rounds",
        } <= populated
        assert len(populated) >= 4

    def test_memory_phase_peaks_recorded(self, run):
        peaks = {
            name: value
            for name, value in run.counters.items()
            if name.startswith("engine.mem.") and name.endswith(".peak_bytes")
        }
        assert peaks and all(v > 0 for v in peaks.values())
        assert run.counters["engine.mem.budget_checks"] == 1
        assert run.counters["engine.mem.budget_predicted_bytes"] > 0

    def test_trace_export_has_distinct_pid_lanes(self, run, tmp_path):
        path = run.write_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        assert run.pid in pids
        assert pids == {run.pid, *run.worker_lanes}
        assert len(pids) >= 2
        assert all(e["dur"] >= 0.0 for e in events)

    def test_profile_renders_worker_lanes(self, run):
        text = run.render_profile()
        assert "== worker lanes ==" in text
        assert "== histograms ==" in text


class TestKernelCounters:
    def test_simulate_kernels_fills_kernel_namespace(self, query, db):
        app = CudaSW()
        app.search(query, db, simulate_kernels=True, collect="counters")
        c = app.last_run_report.counters
        kernel_launches = {
            name: value
            for name, value in c.items()
            if name.startswith("kernel.") and name.endswith(".launches")
        }
        assert sum(kernel_launches.values()) == len(db)
        # Every launch ledger carries the Table I transaction split.
        for name in kernel_launches:
            prefix = name[: -len(".launches")]
            assert c[f"{prefix}.cells"] > 0
            assert c[f"{prefix}.global_transactions"] == (
                c[f"{prefix}.global_load_transactions"]
                + c[f"{prefix}.global_store_transactions"]
            )

    def test_model_counters_from_predict(self, query, db):
        app = CudaSW()
        _, report = app.search(query, db, collect="counters")
        c = app.last_run_report.counters
        assert c["model.predict_calls"] == 1
        assert c["model.cells"] == report.total_cells
        assert (
            c["model.inter.sequences"] + c["model.intra.sequences"]
            == len(db)
        )


class TestSessionOwnership:
    def test_off_leaves_no_run_report(self, query, db):
        app = CudaSW()
        app.search(query, db, collect="off")
        assert app.last_run_report is None
        app.search(query, db, collect="counters")
        assert app.last_run_report is not None
        app.search(query, db)  # default off resets it again
        assert app.last_run_report is None

    def test_outer_session_owns_collection(self, query, db):
        app = CudaSW()
        with obs.collect("counters") as instr:
            app.search(query, db, collect="counters")
            # The ambient session owns the data; the app defers to it.
            assert app.last_run_report is None
        er = app.last_engine_report
        assert instr.counters.get("engine.pack.residues") == er.residues

    def test_run_report_meta_describes_search(self, query, db):
        app = CudaSW()
        app.search(query, db, collect="counters", workers=1)
        meta = app.last_run_report.meta
        assert meta["query_id"] == query.id
        assert meta["query_length"] == len(query)
        assert meta["database_sequences"] == len(db)
        assert meta["engine"] == "batched"


class TestSearchBatchCollect:
    def test_campaign_level_report(self, db):
        rng = np.random.default_rng(13)
        queries = [random_protein(40, rng, id=f"q{i}") for i in range(3)]
        app = CudaSW()
        results, batch = search_batch(app, queries, db, collect="counters")
        run = app.last_run_report
        assert run is not None
        assert run.counters["batch.queries"] == 3
        # Three searches' pack counters accumulate in one session.
        er = app.last_engine_report
        assert run.counters["engine.pack.residues"] == 3 * er.residues
        assert run.meta["batch_queries"] == 3
        assert run.meta["campaign_gcups"] == pytest.approx(batch.gcups)

    def test_invalid_collect_rejected(self, db):
        rng = np.random.default_rng(14)
        app = CudaSW()
        q = random_protein(30, rng, id="q")
        with pytest.raises(ValueError):
            search_batch(app, [q], db, collect="everything")
        with pytest.raises(ValueError):
            app.search(q, db, collect="everything")


class _SpyInstrumentation:
    """Counts how many instrumentation calls one search emits.

    Shaped like the no-op singleton (``enabled`` False keeps every
    guarded block skipped), so the call count it records is exactly the
    number of no-op method invocations a ``collect="off"`` search pays.
    """

    mode = "off"
    enabled = False
    memory = False
    counters = None
    histograms = None
    tracer = None

    def __init__(self):
        self.calls = 0

    def span(self, name):
        self.calls += 1
        return contextlib.nullcontext()

    def count(self, name, value=1):
        self.calls += 1

    def observe(self, name, value):
        self.calls += 1

    def count_kernel(self, kernel_name, counts):
        self.calls += 1


class TestOffModeOverhead:
    @pytest.mark.parametrize("engine", ["batched", "striped"])
    def test_off_mode_overhead_within_two_percent(self, query, db, engine):
        app = CudaSW()

        # 1. How many instrumentation touch-points does one search emit?
        spy = _SpyInstrumentation()
        token = obs_context._ACTIVE.set(spy)
        try:
            app.search(query, db, engine=engine)
        finally:
            obs_context._ACTIVE.reset(token)
        sites = spy.calls
        assert sites > 0

        # 2. Price one no-op touch-point (span enter/exit is the
        #    costliest shape, so price every site at it).
        reps = 20_000
        start = time.perf_counter()
        for _ in range(reps):
            with NO_OP.span("x"):
                pass
        per_site = (time.perf_counter() - start) / reps

        # 3. Compare against the real search time (best of 3 to shave
        #    scheduler noise; overhead bound is what matters).
        search_seconds = min(
            _timed(lambda: app.search(query, db, engine=engine))
            for _ in range(3)
        )
        overhead = sites * per_site
        assert overhead <= 0.02 * search_seconds, (
            f"off-mode instrumentation cost {overhead * 1e6:.1f}us over "
            f"{sites} sites vs {engine} search {search_seconds * 1e3:.2f}ms"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
