"""Unit tests for the span tracer."""

import threading
import time

import pytest

from repro.obs import Span, Tracer, render_forest


class TestSpan:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Span(name="", start=0.0)

    def test_as_dict_nests(self):
        s = Span(name="a", start=0.0, seconds=1.0)
        s.children.append(Span(name="b", start=0.1, seconds=0.5))
        d = s.as_dict()
        assert d["name"] == "a"
        assert d["children"][0]["name"] == "b"

    def test_walk_paths(self):
        s = Span(name="a", start=0.0)
        b = Span(name="b", start=0.0)
        b.children.append(Span(name="c", start=0.0))
        s.children.append(b)
        assert [p for p, _ in s.walk()] == ["a", "a/b", "a/b/c"]


class TestTracer:
    def test_nesting_and_roots(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("inner"):
                pass
        with tr.span("second_root"):
            pass
        roots = tr.roots
        assert [r.name for r in roots] == ["outer", "second_root"]
        assert [c.name for c in roots[0].children] == ["inner", "inner"]

    def test_durations_measured(self):
        tr = Tracer()
        with tr.span("timed"):
            time.sleep(0.01)
        (root,) = tr.roots
        assert root.seconds >= 0.009
        assert root.start >= 0.0

    def test_child_duration_within_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.005)
        (root,) = tr.roots
        assert root.children[0].seconds <= root.seconds

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        (root,) = tr.roots
        assert root.name == "outer"
        assert root.seconds > 0
        assert root.children[0].seconds > 0

    def test_total_seconds_sums_same_name(self):
        tr = Tracer()
        with tr.span("root"):
            for _ in range(3):
                with tr.span("sweep"):
                    pass
        assert tr.total_seconds("sweep") == pytest.approx(
            sum(c.seconds for c in tr.roots[0].children)
        )

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        done = threading.Event()

        def other():
            with tr.span("thread_root"):
                time.sleep(0.005)
            done.set()

        with tr.span("main_root"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        done.wait()
        names = sorted(r.name for r in tr.roots)
        # The other thread's span must be a root of its own, not a child
        # of the main thread's open span.
        assert names == ["main_root", "thread_root"]

    def test_render_aggregates_siblings(self):
        tr = Tracer()
        with tr.span("root"):
            for _ in range(4):
                with tr.span("sweep"):
                    pass
        text = tr.render()
        assert "sweep x4" in text
        assert "root" in text
        assert "ms" in text

    def test_render_empty(self):
        assert "no spans" in Tracer().render()
        assert "no spans" in render_forest([])
