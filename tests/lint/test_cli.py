"""The repro-lint CLI: exit codes, output formats, baseline workflow,
and the integration check that the shipped tree lints clean."""

import io
import json
from pathlib import Path

from repro.lint import cli

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "def fine() -> int:\n    return 1\n"
DIRTY = (
    "import numpy as np\n"
    "\n"
    "def f(n):\n"
    "    return np.zeros(n)\n"
)


def invoke(*argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli.main(list(argv), out=out, err=err)
    return code, out.getvalue(), err.getvalue()


def make_tree(tmp_path, source=DIRTY):
    pkg = tmp_path / "src" / "repro" / "kernels"
    pkg.mkdir(parents=True)
    (pkg / "k.py").write_text(source)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        make_tree(tmp_path, CLEAN)
        code, out, _ = invoke("--root", str(tmp_path))
        assert code == cli.EXIT_CLEAN
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path):
        make_tree(tmp_path)
        code, out, _ = invoke("--root", str(tmp_path))
        assert code == cli.EXIT_FINDINGS
        assert "RPL102" in out

    def test_missing_path_exits_two(self, tmp_path):
        code, _, err = invoke("--root", str(tmp_path), "no-such-dir")
        assert code == cli.EXIT_USAGE
        assert "no-such-dir" in err

    def test_bad_flag_exits_two(self):
        code, _, _ = invoke("--definitely-not-a-flag")
        assert code == cli.EXIT_USAGE


class TestFormats:
    def test_json_report_schema(self, tmp_path):
        make_tree(tmp_path)
        code, out, _ = invoke("--root", str(tmp_path), "--format", "json")
        assert code == cli.EXIT_FINDINGS
        report = json.loads(out)
        assert report["schema"] == cli.REPORT_SCHEMA
        assert report["version"] == cli.REPORT_VERSION
        assert report["summary"]["total"] == 1
        assert report["summary"]["by_rule"] == {"RPL102": 1}
        (finding,) = report["findings"]
        assert finding["rule"] == "RPL102"
        assert finding["path"].endswith("kernels/k.py")
        assert {"line", "col", "message", "severity", "fingerprint"} <= (
            finding.keys()
        )

    def test_github_annotations(self, tmp_path):
        make_tree(tmp_path)
        code, out, _ = invoke("--root", str(tmp_path), "--format", "github")
        assert code == cli.EXIT_FINDINGS
        assert out.startswith("::")
        assert "RPL102" in out

    def test_output_file_written_for_text_format(self, tmp_path):
        make_tree(tmp_path)
        report_path = tmp_path / "report.json"
        invoke("--root", str(tmp_path), "--output", str(report_path))
        report = json.loads(report_path.read_text())
        assert report["schema"] == cli.REPORT_SCHEMA

    def test_list_rules_catalogue(self):
        code, out, _ = invoke("--list-rules")
        assert code == cli.EXIT_CLEAN
        for rule_id in ("RPL101", "RPL102", "RPL103", "RPL104", "RPL105",
                        "RPL106"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_update_then_absorb_then_ratchet(self, tmp_path):
        make_tree(tmp_path)
        code, out, _ = invoke("--root", str(tmp_path), "--update-baseline")
        assert code == cli.EXIT_CLEAN
        assert (tmp_path / cli.DEFAULT_BASELINE).is_file()

        # Baselined findings no longer fail the run...
        code, out, _ = invoke("--root", str(tmp_path))
        assert code == cli.EXIT_CLEAN
        assert "1 baselined" in out

        # ...but --no-baseline still shows the debt...
        code, _, _ = invoke("--root", str(tmp_path), "--no-baseline")
        assert code == cli.EXIT_FINDINGS

        # ...and a *new* violation in the same tree still fails.
        extra = tmp_path / "src" / "repro" / "kernels" / "k2.py"
        extra.write_text(DIRTY)
        code, out, _ = invoke("--root", str(tmp_path))
        assert code == cli.EXIT_FINDINGS
        assert "k2.py" in out

    def test_select_and_ignore(self, tmp_path):
        make_tree(tmp_path)
        code, _, _ = invoke(
            "--root", str(tmp_path), "--select", "RPL101"
        )
        assert code == cli.EXIT_CLEAN
        code, _, _ = invoke(
            "--root", str(tmp_path), "--ignore", "dtype-stability"
        )
        assert code == cli.EXIT_CLEAN


class TestOnTheRealTree:
    def test_src_lints_clean(self):
        # The ISSUE acceptance criterion: repro-lint src/ exits 0 on
        # the shipped tree (with its committed, currently empty,
        # baseline).
        code, out, _ = invoke("--root", str(REPO_ROOT), "src/")
        assert code == cli.EXIT_CLEAN, out

    def test_self_lints_clean(self):
        code, out, _ = invoke("--root", str(REPO_ROOT), "--self")
        assert code == cli.EXIT_CLEAN, out
