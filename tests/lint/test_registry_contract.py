"""The counter-registry contract (RPL104), including the acceptance
case: a counter added to the code without a docs/observability.md entry
must produce a finding."""

import textwrap

from repro.lint.rules.registry import CounterRegistryRule, parse_registry
from repro.lint.runner import LintRunner

REGISTRY_DOC = textwrap.dedent(
    """
    # Observability

    <!-- repro-lint:counter-registry -->

    | counter | incremented |
    |---|---|
    | `engine.pack.groups` | per packing: groups built (see `Packer.run`) |
    | `kernel.*` | per-launch ledger |

    <!-- /repro-lint:counter-registry -->

    <!-- repro-lint:span-registry -->

    | span | opened by |
    |---|---|
    | `search` | `CudaSW.search` |
    | `sweep` | forwarded via `span_name=` |

    <!-- /repro-lint:span-registry -->

    <!-- repro-lint:histogram-registry -->

    | histogram | observed |
    |---|---|
    | `engine.sweep.group_seconds` | per group (see `Histogram`) |

    <!-- /repro-lint:histogram-registry -->
    """
)


def run(tmp_path, source, doc=REGISTRY_DOC):
    (tmp_path / "docs").mkdir(exist_ok=True)
    (tmp_path / "docs" / "observability.md").write_text(doc)
    runner = LintRunner(tmp_path, rules=[CounterRegistryRule()])
    return runner.run_sources(
        {"src/repro/engine/pack.py": textwrap.dedent(source)}
    ).findings


REGISTERED_USE = """
    def f(instr, helper):
        instr.count("engine.pack.groups", 1)
        with instr.span("search"):
            pass
        helper(span_name="sweep")
        instr.observe("engine.sweep.group_seconds", 0.25)
"""


class TestAcceptance:
    def test_undocumented_counter_fails(self, tmp_path):
        findings = run(
            tmp_path,
            REGISTERED_USE
            + "        instr.count(\"engine.pack.totally_new\", 1)\n",
        )
        assert len(findings) == 1
        f = findings[0]
        assert f.rule_id == "RPL104"
        assert "engine.pack.totally_new" in f.message
        assert f.path == "src/repro/engine/pack.py"

    def test_registered_names_are_clean(self, tmp_path):
        assert run(tmp_path, REGISTERED_USE) == []

    def test_wildcard_covers_dynamic_family(self, tmp_path):
        findings = run(
            tmp_path,
            REGISTERED_USE
            + "        instr.count(\"kernel.intra(T=256).cells\", 9)\n",
        )
        assert findings == []

    def test_undocumented_span_fails(self, tmp_path):
        findings = run(
            tmp_path,
            REGISTERED_USE.replace('"search"', '"mystery_phase"'),
        )
        messages = [f.message for f in findings]
        assert any("mystery_phase" in m for m in messages)

    def test_stale_doc_entry_fails(self, tmp_path):
        # 'search' span registered but never opened anywhere.
        findings = run(
            tmp_path,
            """
            def f(instr, helper):
                instr.count("engine.pack.groups", 1)
                helper(span_name="sweep")
                instr.observe("engine.sweep.group_seconds", 0.25)
            """,
        )
        assert len(findings) == 1
        assert "search" in findings[0].message
        assert findings[0].path == "docs/observability.md"

    def test_undocumented_histogram_fails(self, tmp_path):
        findings = run(
            tmp_path,
            REGISTERED_USE
            + "        instr.observe(\"engine.sweep.surprise\", 1.0)\n",
        )
        assert len(findings) == 1
        assert "histogram" in findings[0].message
        assert "engine.sweep.surprise" in findings[0].message
        assert findings[0].path == "src/repro/engine/pack.py"

    def test_stale_histogram_entry_fails(self, tmp_path):
        # Registered histogram never observed anywhere in the sources.
        findings = run(
            tmp_path,
            REGISTERED_USE.replace(
                'instr.observe("engine.sweep.group_seconds", 0.25)',
                "pass",
            ),
        )
        assert len(findings) == 1
        assert "engine.sweep.group_seconds" in findings[0].message
        assert findings[0].path == "docs/observability.md"

    def test_missing_registry_doc_fails(self, tmp_path):
        runner = LintRunner(tmp_path, rules=[CounterRegistryRule()])
        findings = runner.run_sources(
            {
                "src/repro/engine/pack.py": textwrap.dedent(
                    """
                    def f(instr):
                        instr.count("engine.pack.groups", 1)
                    """
                )
            }
        ).findings
        assert len(findings) == 1
        assert "does not exist" in findings[0].message


class TestCollection:
    def test_non_instr_receivers_are_ignored(self, tmp_path):
        # str.count and arbitrary .span() APIs must not leak in.
        findings = run(
            tmp_path,
            REGISTERED_USE
            + "        'text'.count('t')\n"
            + "        tracer = object()\n",
        )
        assert findings == []


class TestParseRegistry:
    def test_first_backtick_per_line_wins(self):
        counters, prefixes, spans, histograms = parse_registry(REGISTRY_DOC)
        assert counters == {"engine.pack.groups"}
        assert prefixes == {"kernel."}
        assert spans == {"search", "sweep"}
        assert histograms == {"engine.sweep.group_seconds"}
        # Description-column code references never register.
        assert "Packer.run" not in counters
        assert "CudaSW.search" not in spans
        assert "Histogram" not in histograms

    def test_text_outside_markers_is_ignored(self):
        counters, prefixes, spans, histograms = parse_registry(
            "some `stray.token` outside any marker section\n"
        )
        assert counters == prefixes == spans == histograms == set()
