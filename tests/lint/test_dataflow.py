"""The abstract interpreter behind RPL107-RPL110, tested directly.

Three layers:

* the lattice primitives — NumPy promotion, the dtype join, symbolic
  shape unification and provable-broadcast refutation — as pure
  functions;
* interpreter semantics over small programs — branch merges, loop
  fixed points, alias-pair lifecycle, confidence;
* the shipped hot kernels as negative fixtures: the striped lazy-F
  fold and the strips segmented carry are lifted *from the installed
  sources* and must produce zero dataflow findings — they are exactly
  the saturating in-place idioms the rules must never flag.
"""

import ast
import textwrap

import pytest

from repro.lint.astutil import qualname_index
from repro.lint.dataflow import (
    MAX_LOOP_ITERS,
    NARROW_DTYPES,
    UNKNOWN,
    analyze_function,
    analyze_module,
    broadcast_shapes,
    join_dtype,
    join_shape,
    promote,
    promote_with_scalar,
    wider_than,
)
from repro.lint.runner import LintRunner
from repro.lint.rules.broadcast import BroadcastMismatchRule
from repro.lint.rules.poolsafety import PoolBoundaryRule
from repro.lint.rules.promotion import DtypePromotionRule
from repro.lint.rules.view_alias import ViewAliasMutationRule


def analyze(source, name="f"):
    """Analysis of the single function ``name`` in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    module = analyze_module(tree, qualname_index(tree))
    for analysis in module.functions:
        if analysis.qualname.split(".")[-1] == name:
            return analysis
    raise AssertionError(f"no function {name!r} in fixture")


def run_rule(rule, path, source):
    runner = LintRunner("/nonexistent-root", rules=[rule])
    return runner.run_sources({path: textwrap.dedent(source)}).findings


def dataflow_rules():
    return [
        BroadcastMismatchRule(),
        DtypePromotionRule(),
        ViewAliasMutationRule(),
        PoolBoundaryRule(),
    ]


# ----------------------------------------------------------------------
# Lattice primitives
# ----------------------------------------------------------------------
class TestPromotionTable:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("int8", "int8", "int8"),
            ("uint8", "uint8", "uint8"),
            ("int8", "uint8", "int16"),  # no common 8-bit supertype
            ("int8", "int16", "int16"),
            ("uint8", "int16", "int16"),
            ("int16", "int32", "int32"),
            ("int32", "int64", "int64"),
            ("int64", "float", "float"),
            ("int8", "float", "float"),
            ("bool", "int8", "int8"),  # bool is transparent
            ("bool", "bool", "bool"),
        ],
    )
    def test_promote(self, a, b, expected):
        assert promote(a, b) == expected
        assert promote(b, a) == expected  # commutative

    def test_unknown_absorbs(self):
        assert promote("int8", UNKNOWN) == UNKNOWN
        assert promote(UNKNOWN, "float") == UNKNOWN

    def test_join_is_promotion_not_collapse(self):
        # The join of two *known* dtypes is their promotion — this is
        # what makes widening across a loop back edge detectable at
        # all (a collapse-to-unknown join would hide it).
        assert join_dtype("int32", "int64") == "int64"
        assert join_dtype("uint8", "int16") == "int16"

    def test_wider_than_is_strict(self):
        assert wider_than("int16", "uint8")
        assert wider_than("float", "int32")
        assert not wider_than("int8", "int8")
        assert not wider_than("int8", "int16")
        assert not wider_than(UNKNOWN, "int8")
        assert not wider_than("int16", UNKNOWN)

    def test_weak_python_scalars_nep50(self):
        # NEP 50: a Python int does not promote an array's dtype; a
        # Python float does.
        assert promote_with_scalar("int8", "int") == "int8"
        assert promote_with_scalar("uint8", "int") == "uint8"
        assert promote_with_scalar("int8", "float") == "float"
        assert promote_with_scalar("int64", "float") == "float"
        # Strong (NumPy) scalar operands promote normally.
        assert promote_with_scalar("int8", "int64") == "int64"

    def test_narrow_set(self):
        assert NARROW_DTYPES == {"int8", "uint8", "int16"}


class TestShapes:
    def test_broadcast_compatible(self):
        result, mismatch = broadcast_shapes((4, 1), (3,))
        assert result == (4, 3)
        assert mismatch is None

    def test_broadcast_provable_mismatch(self):
        result, mismatch = broadcast_shapes((4,), (5,))
        assert mismatch == (4, 5)

    def test_symbolic_dims_unify_not_refute(self):
        # ('n',) vs (4,): n MIGHT be 4 — never a provable mismatch.
        _, mismatch = broadcast_shapes(("n",), (4,))
        assert mismatch is None
        _, mismatch = broadcast_shapes(("n",), ("m",))
        assert mismatch is None

    def test_join_shape_keeps_agreement_drops_conflict(self):
        assert join_shape((4, "n"), (4, "m")) == (4, None)
        assert join_shape((4, 8), (4, 8)) == (4, 8)
        assert join_shape((4,), (4, 8)) is None  # rank conflict


# ----------------------------------------------------------------------
# Interpreter semantics
# ----------------------------------------------------------------------
class TestBranchMerge:
    def test_dtype_joins_at_branch_merge(self):
        analysis = analyze("""
            import numpy as np

            def f(n, flag):
                if flag:
                    x = np.zeros(n, dtype=np.int32)
                else:
                    x = np.zeros(n, dtype=np.int64)
                y = x
                return y
        """)
        assert analysis.confident
        assert analysis.error is None
        # No widening event: the merge itself is a join, not a rebind.
        assert analysis.widen_events() == []

    def test_widening_assignment_after_merge_is_seen(self):
        analysis = analyze("""
            import numpy as np

            def f(n):
                x = np.zeros(n, dtype=np.uint8)
                y = np.zeros(n, dtype=np.int32)
                x = x + y
                return x
        """)
        events = analysis.widen_events()
        assert [(e.name, e.old, e.new) for e in events] == [
            ("x", "uint8", "int32")
        ]


class TestLoopFixpoint:
    def test_loop_widening_detected(self):
        analysis = analyze("""
            import numpy as np

            def f(n, m, ramp):
                acc = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    acc = acc + np.float64(1.5)
                return acc
        """)
        assert analysis.confident
        loops = [e for e in analysis.widen_events() if e.via == "loop"]
        assert [(e.name, e.old, e.new) for e in loops] == [
            ("acc", "int32", "float")
        ]

    def test_stable_loop_converges_clean(self):
        analysis = analyze("""
            import numpy as np

            def f(n, m):
                acc = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    acc = acc + 1
                return acc
        """)
        assert analysis.confident
        assert analysis.widen_events() == []

    def test_fixed_point_terminates_on_pathological_nesting(self):
        body = "\n".join(
            f"{'    ' * (i + 2)}for i{i} in range(n):"
            for i in range(MAX_LOOP_ITERS)
        )
        inner = f"{'    ' * (MAX_LOOP_ITERS + 2)}x = x + 1"
        analysis = analyze(
            "import numpy as np\n\n"
            "def f(n):\n"
            "        x = np.zeros(n, dtype=np.int64)\n"
            f"{body}\n{inner}\n"
            "        return x\n"
        )
        assert analysis.error is None  # terminated, whatever the verdict

    def test_global_statement_drops_confidence(self):
        analysis = analyze("""
            def f():
                global _STATE
                _STATE = 1
        """)
        assert not analysis.confident


class TestAliasPairs:
    def test_pair_dies_when_partner_rebinds_fresh(self):
        analysis = analyze("""
            import numpy as np

            def f(n, m):
                prev = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    cur = np.zeros(n, dtype=np.int32)
                    cur[0] = i
                    prev = cur
                return prev
        """)
        assert analysis.confident
        assert analysis.alias_events() == []

    def test_mutation_through_live_pair_is_an_event(self):
        analysis = analyze("""
            import numpy as np

            def f(n):
                cur = np.zeros(n, dtype=np.int32)
                prev = cur
                cur[0] = 1
                return prev
        """)
        events = analysis.alias_events()
        assert [e.name for e in events] == ["cur"]

    def test_mutation_through_view_of_pair_is_an_event(self):
        analysis = analyze("""
            import numpy as np

            def f(n):
                a = np.zeros(n, dtype=np.int32)
                b = a
                c = b[1:]
                c[0] = 1
                return a
        """)
        assert [e.name for e in analysis.alias_events()] == ["c"]

    def test_tuple_exchange_records_no_pair(self):
        analysis = analyze("""
            import numpy as np

            def f(n, m):
                h = np.zeros(n, dtype=np.int32)
                hbuf = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    h[0] = i
                    h, hbuf = hbuf, h
                return h
        """)
        assert analysis.confident
        assert analysis.alias_events() == []


class TestDriverRobustness:
    def test_analyze_function_never_raises(self):
        # A node the interpreter has no business understanding.
        fn = ast.parse("def f():\n    return 1").body[0]
        fn.body.insert(0, ast.Expr(value=ast.Constant(value=...)))
        analysis = analyze_function(fn, "f")
        assert analysis.qualname == "f"

    def test_nested_functions_are_separate_units(self):
        tree = ast.parse(textwrap.dedent("""
            def outer(n):
                def inner(m):
                    return m
                return inner
        """))
        module = analyze_module(tree, qualname_index(tree))
        assert sorted(a.qualname for a in module.functions) == [
            "outer", "outer.inner"
        ]


# ----------------------------------------------------------------------
# The shipped kernels as verbatim negative fixtures
# ----------------------------------------------------------------------
def _installed_source(module_name):
    import importlib

    module = importlib.import_module(module_name)
    with open(module.__file__, encoding="utf-8") as handle:
        return handle.read()


class TestShippedKernelsAreClean:
    """The rules were built around these idioms; hold them to it."""

    @pytest.mark.parametrize(
        "module_name, lint_path",
        [
            ("repro.engine.striped", "repro/engine/striped.py"),
            ("repro.engine.strips", "repro/engine/strips.py"),
            ("repro.engine.lanes", "repro/engine/lanes.py"),
            ("repro.engine.executor", "repro/engine/executor.py"),
        ],
    )
    def test_zero_dataflow_findings(self, module_name, lint_path):
        source = _installed_source(module_name)
        runner = LintRunner("/nonexistent-root", rules=dataflow_rules())
        result = runner.run_sources({lint_path: source})
        assert result.findings == []

    def test_striped_lazy_f_interprets_confidently(self):
        # The lazy-F fold is the most in-place-heavy function in the
        # tree; it must converge (else RPL107-109 silently skip it).
        source = _installed_source("repro.engine.striped")
        tree = ast.parse(source)
        module = analyze_module(tree, qualname_index(tree))
        analysis = next(
            a for a in module.functions if a.qualname == "_lazy_f_sweep"
        )
        assert analysis.error is None
        assert analysis.confident
        assert analysis.alias_events() == []
        assert analysis.widen_events() == []

    def test_strips_segmented_carry_interprets_confidently(self):
        source = _installed_source("repro.engine.strips")
        tree = ast.parse(source)
        module = analyze_module(tree, qualname_index(tree))
        analysis = next(
            a
            for a in module.functions
            if a.qualname == "score_packed_group_strips"
        )
        assert analysis.error is None
        assert analysis.alias_events() == []


# ----------------------------------------------------------------------
# RPL107: broadcast mismatch
# ----------------------------------------------------------------------
class TestBroadcastMismatchRule:
    def test_provable_mismatch_is_flagged(self):
        findings = run_rule(
            BroadcastMismatchRule(),
            "repro/engine/sweep.py",
            """
            import numpy as np

            def f():
                a = np.zeros(4, dtype=np.int32)
                b = np.zeros(5, dtype=np.int32)
                return a + b
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL107"]
        assert "(4,)" in findings[0].message
        assert "(5,)" in findings[0].message

    def test_broadcastable_and_symbolic_are_clean(self):
        findings = run_rule(
            BroadcastMismatchRule(),
            "repro/engine/sweep.py",
            """
            import numpy as np

            def f(n):
                a = np.zeros((4, 1), dtype=np.int32)
                b = np.zeros(3, dtype=np.int32)
                c = np.zeros(n, dtype=np.int32)
                d = np.zeros(4, dtype=np.int32)
                return a + b, c + d
            """,
        )
        assert findings == []

    def test_out_of_scope_module_is_ignored(self):
        findings = run_rule(
            BroadcastMismatchRule(),
            "repro/app/anything.py",
            """
            import numpy as np

            def f():
                return np.zeros(4, dtype=np.int32) + np.zeros(
                    5, dtype=np.int32
                )
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL108: dtype promotion
# ----------------------------------------------------------------------
class TestDtypePromotionRule:
    def test_tier_widening_assignment_is_flagged(self):
        findings = run_rule(
            DtypePromotionRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def sweep(n):
                h = np.zeros(n, dtype=np.uint8)
                wide = np.zeros(n, dtype=np.int16)
                h = h + wide
                return h
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL108"]
        assert "uint8" in findings[0].message

    def test_int32_loop_accumulator_promotion_is_flagged(self):
        findings = run_rule(
            DtypePromotionRule(),
            "repro/engine/sweep.py",
            """
            import numpy as np

            def fold(n, m):
                acc = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    acc = acc + np.float64(0.5)
                return acc
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL108"]
        assert "accumulator" in findings[0].message

    def test_explicit_astype_is_the_sanctioned_escape(self):
        findings = run_rule(
            DtypePromotionRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def rerun(n):
                lane8 = np.zeros(n, dtype=np.uint8)
                lane8 = lane8.astype(np.int16)
                return lane8
            """,
        )
        assert findings == []

    def test_in_place_saturating_idiom_is_clean(self):
        # The striped uint8 maximum-before-subtract shape: in-place ops
        # never change dtype, so nothing widens.
        findings = run_rule(
            DtypePromotionRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def saturate(n):
                h = np.zeros(n, dtype=np.uint8)
                bias = np.full(n, 4, dtype=np.uint8)
                np.maximum(h, bias, out=h)
                np.subtract(h, bias, out=h)
                h += 1
                return h
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL109: view aliasing (Section III-A, flow-sensitive)
# ----------------------------------------------------------------------
class TestViewAliasMutationRule:
    def test_section_iii_a_shallow_swap_is_caught(self):
        findings = run_rule(
            ViewAliasMutationRule(),
            "repro/sw/wavefront.py",
            """
            import numpy as np

            def sweep(n, m):
                h_cur = np.zeros(n, dtype=np.int32)
                h_prev = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    h_prev = h_cur
                    h_cur[0] = i
                return h_prev
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL109"]
        assert "shallow swap" in findings[0].message

    def test_rebinding_is_tracked_not_name_matched(self):
        # The mutation goes through a *third* name derived from the
        # pair — spelling-based heuristics cannot see this one.
        findings = run_rule(
            ViewAliasMutationRule(),
            "repro/sw/wavefront.py",
            """
            import numpy as np

            def sweep(n):
                a = np.zeros(n, dtype=np.int32)
                b = a
                window = b[1:]
                window[0] = 1
                return a
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL109"]

    def test_tuple_exchange_and_fresh_rotation_are_clean(self):
        findings = run_rule(
            ViewAliasMutationRule(),
            "repro/sw/wavefront.py",
            """
            import numpy as np

            def exchange(n, m):
                h = np.zeros(n, dtype=np.int32)
                hbuf = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    h[0] = i
                    h, hbuf = hbuf, h
                return h

            def rotate(n, m):
                prev = np.zeros(n, dtype=np.int32)
                for i in range(m):
                    cur = np.zeros(n, dtype=np.int32)
                    cur[0] = i
                    prev = cur
                return prev
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL110: pool-boundary safety
# ----------------------------------------------------------------------
class TestPoolBoundaryRule:
    def test_instrumentation_smuggled_into_chunk_is_caught(self):
        findings = run_rule(
            PoolBoundaryRule(),
            "repro/engine/dispatch.py",
            """
            from concurrent.futures import ProcessPoolExecutor
            from repro.obs import Instrumentation

            def dispatch(chunks, workers):
                instr = Instrumentation()
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(score_chunk, chunk, instr)
                        for chunk in chunks
                    ]
                return futures
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL110"]
        assert "Instrumentation" in findings[0].message

    def test_parent_state_mutating_closure_is_caught(self):
        findings = run_rule(
            PoolBoundaryRule(),
            "repro/engine/dispatch.py",
            """
            def dispatch(pool, chunks):
                results = {}

                def work(chunk):
                    results[chunk.key] = chunk.score
                    return chunk

                return [pool.submit(work, c) for c in chunks]
            """,
        )
        assert len(findings) == 2  # nested callable + parent mutation
        assert any("mutates parent-scope state" in f.message
                   for f in findings)
        assert any("'results'" in f.message for f in findings)

    def test_shipped_worker_telemetry_protocol_is_clean(self):
        # The executor.py shape: module-level task + initializer, plain
        # initargs, telemetry merged parent-side from return values.
        findings = run_rule(
            PoolBoundaryRule(),
            "repro/engine/dispatch.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            _WORKER_STATE = None

            def _init_worker(codes, matrix, gaps, inject, engine, mode):
                global _WORKER_STATE
                _WORKER_STATE = (codes, matrix, gaps, inject, engine, mode)

            def _score_chunk_task(payload):
                return payload

            def dispatch(profile, gaps, policy, engine, instr, chunks):
                live_pool = ProcessPoolExecutor(
                    max_workers=4,
                    initializer=_init_worker,
                    initargs=(profile.query_codes, profile.matrix, gaps,
                              policy.inject, engine, instr.mode),
                )
                return [live_pool.submit(_score_chunk_task, payload)
                        for payload in chunks]
            """,
        )
        assert findings == []

    def test_out_of_scope_module_is_ignored(self):
        findings = run_rule(
            PoolBoundaryRule(),
            "repro/sw/anything.py",
            """
            def dispatch(pool, instr):
                return pool.submit(lambda: instr)
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Parallel runner and findings cache
# ----------------------------------------------------------------------
_CACHED_FIXTURE = """
import numpy as np

def sweep(n):
    h_cur = np.zeros(n, dtype=np.int32)
    h_prev = h_cur
    h_cur[0] = 1
    return h_prev
"""


class TestRunnerParallelAndCache:
    def _write_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "sw"
        pkg.mkdir(parents=True)
        (pkg / "hot.py").write_text(
            textwrap.dedent(_CACHED_FIXTURE), encoding="utf-8"
        )
        (pkg / "clean.py").write_text(
            "def untouched():\n    return 0\n", encoding="utf-8"
        )
        return tmp_path

    def test_parallel_matches_serial(self, tmp_path):
        root = self._write_tree(tmp_path)
        serial = LintRunner(root, jobs=1).run_paths([root])
        parallel = LintRunner(root, jobs=2).run_paths([root])
        assert parallel.findings == serial.findings
        assert parallel.files_checked == serial.files_checked

    def test_cache_hits_on_second_run_with_identical_findings(
        self, tmp_path
    ):
        root = self._write_tree(tmp_path)
        cache = root / ".repro-lint-cache"
        cold = LintRunner(root, cache_dir=cache).run_paths([root])
        assert cold.cache_hits == 0
        assert cache.is_dir()
        warm = LintRunner(root, cache_dir=cache).run_paths([root])
        assert warm.cache_hits == 2
        assert warm.findings == cold.findings
        # Fingerprints survive the dict round-trip through the cache.
        assert [f.fingerprint() for f in warm.findings] == [
            f.fingerprint() for f in cold.findings
        ]

    def test_edited_file_misses_cache(self, tmp_path):
        root = self._write_tree(tmp_path)
        cache = root / ".repro-lint-cache"
        LintRunner(root, cache_dir=cache).run_paths([root])
        hot = root / "repro" / "sw" / "hot.py"
        hot.write_text(
            hot.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        rerun = LintRunner(root, cache_dir=cache).run_paths([root])
        assert rerun.cache_hits == 1  # only the untouched file

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        root = self._write_tree(tmp_path)
        cache = root / ".repro-lint-cache"
        cold = LintRunner(root, cache_dir=cache).run_paths([root])
        for entry in cache.glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        rerun = LintRunner(root, cache_dir=cache).run_paths([root])
        assert rerun.cache_hits == 0
        assert rerun.findings == cold.findings

    def test_cross_file_rules_are_never_cached(self):
        from repro.lint.rules import all_rules
        from repro.lint.runner import _is_local_rule

        rules = all_rules()
        cross = [r for r in rules if not _is_local_rule(r)]
        assert cross, "expected at least one cross-file rule"
        for rule in cross:
            assert type(rule).finish.__qualname__ != "Rule.finish"
