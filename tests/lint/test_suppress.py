"""Inline ``# repro-lint: disable=...`` suppression handling."""

import textwrap

from repro.lint.rules.dtypes import DtypeStabilityRule
from repro.lint.runner import LintRunner
from repro.lint.suppress import scan_suppressions


def run(source):
    runner = LintRunner("/nonexistent-root", rules=[DtypeStabilityRule()])
    return runner.run_sources(
        {"repro/kernels/k.py": textwrap.dedent(source)}
    )


class TestSuppressionDirectives:
    def test_same_line_directive_by_id(self):
        result = run(
            """
            import numpy as np

            def f(n):
                return np.zeros(n)  # repro-lint: disable=RPL102
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_same_line_directive_by_rule_name(self):
        result = run(
            """
            import numpy as np

            def f(n):
                return np.zeros(n)  # repro-lint: disable=dtype-stability
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_banner_line_above(self):
        result = run(
            """
            import numpy as np

            def f(n):
                # repro-lint: disable=RPL102
                return np.zeros(n)
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_all(self):
        result = run(
            """
            import numpy as np

            def f(n):
                return np.zeros(n)  # repro-lint: disable=all
            """
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self):
        result = run(
            """
            import numpy as np

            def f(n):
                return np.zeros(n)  # repro-lint: disable=RPL105
            """
        )
        assert [f.rule_id for f in result.findings] == ["RPL102"]
        assert result.suppressed == 0

    def test_directive_inside_string_is_inert(self):
        # Directives are parsed from real comment tokens, not text.
        result = run(
            """
            import numpy as np

            def f(n):
                note = "# repro-lint: disable=RPL102"
                return np.zeros(n), note
            """
        )
        assert [f.rule_id for f in result.findings] == ["RPL102"]

    def test_comma_separated_rule_list(self):
        smap = scan_suppressions(
            "x = 1  # repro-lint: disable=RPL101, RPL102\n"
        )
        assert smap.is_suppressed(1, "RPL101", "shallow-swap")
        assert smap.is_suppressed(1, "RPL102", "dtype-stability")
        assert not smap.is_suppressed(1, "RPL103", "unseeded-random")
