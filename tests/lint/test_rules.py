"""Per-rule fixtures: each rule has a triggering and a non-triggering case.

Fixtures run through ``LintRunner.run_sources`` with a single rule
instance, so tests exercise exactly the dispatch path the CLI uses
(scope matching included) without touching the filesystem.
"""

import textwrap

from repro.lint.rules.aliasing import ShallowSwapRule
from repro.lint.rules.api_docs import PublicApiDocsRule
from repro.lint.rules.dtypes import DtypeStabilityRule
from repro.lint.rules.exceptions import ExceptSwallowRule
from repro.lint.rules.randomness import UnseededRandomRule
from repro.lint.runner import LintRunner


def run_rule(rule, path, source):
    runner = LintRunner("/nonexistent-root", rules=[rule])
    result = runner.run_sources({path: textwrap.dedent(source)})
    return result.findings


class TestShallowSwapRule:
    def test_alias_then_mutation_is_flagged(self):
        findings = run_rule(
            ShallowSwapRule(),
            "repro/sw/fix.py",
            """
            import numpy as np

            def sweep(n):
                h_cur = np.zeros(n)
                h_prev = h_cur
                h_cur[0] = 1
                return h_prev
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL101"]
        assert "h_prev" in findings[0].message

    def test_parameter_mutation_is_flagged(self):
        findings = run_rule(
            ShallowSwapRule(),
            "repro/kernels/k.py",
            """
            def launch(scores):
                scores[0] = -1
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL101"]
        assert "scores" in findings[0].message

    def test_tuple_exchange_is_sanctioned(self):
        findings = run_rule(
            ShallowSwapRule(),
            "repro/sw/fix.py",
            """
            import numpy as np

            def sweep(n):
                a = np.zeros(n)
                b = np.zeros(n)
                a[0] = 1
                a, b = b, a
                a[1] = 2
                return a, b
            """,
        )
        assert findings == []

    def test_fresh_buffer_rotation_is_clean(self):
        # Rebinding a buffer that is never mutated afterwards is the
        # fix for this bug class, not an instance of it.
        findings = run_rule(
            ShallowSwapRule(),
            "repro/sw/fix.py",
            """
            import numpy as np

            def sweep(n):
                cur = np.zeros(n)
                cur[0] = 1
                prev = cur
                return prev
            """,
        )
        assert findings == []

    def test_out_of_scope_module_is_ignored(self):
        findings = run_rule(
            ShallowSwapRule(),
            "repro/app/anything.py",
            """
            def launch(scores):
                scores[0] = -1
            """,
        )
        assert findings == []


class TestDtypeStabilityRule:
    def test_allocation_without_dtype_is_flagged(self):
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/kernels/k.py",
            """
            import numpy as np

            def f(n):
                return np.zeros(n)
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL102"]

    def test_explicit_dtype_is_clean(self):
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/kernels/k.py",
            """
            import numpy as np

            def f(n):
                a = np.zeros(n, dtype=np.int32)
                b = np.arange(n, dtype=np.int64)
                c = np.empty_like(a)
                return a, b, c
            """,
        )
        assert findings == []

    def test_unguarded_uint8_arithmetic_is_flagged(self):
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def sweep(n, w):
                h = np.zeros(n, dtype=np.uint8)
                np.add(h, w, out=h)
                h = h - 3
                return h
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL102", "RPL102"]
        assert all("wraps silently" in f.message for f in findings)
        assert "'h'" in findings[0].message

    def test_narrowing_astype_then_augassign_is_flagged(self):
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/kernels/k.py",
            """
            import numpy as np

            def biased(w, bias):
                prof = w.astype(np.int8)
                prof += bias
                return prof
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL102"]
        assert "'prof'" in findings[0].message

    def test_saturating_idiom_is_clean(self):
        # The striped engine's shape: clamp (maximum-before-subtract,
        # minimum cap clip) marks the function saturation-disciplined.
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def sweep(n, w, cap):
                h = np.zeros(n, dtype=np.uint8)
                sig = np.full(n, 2, dtype=np.uint8)
                np.add(h, w, out=h)
                np.maximum(h, sig, out=h)
                np.subtract(h, sig, out=h)
                np.minimum(h, cap, out=h)
                return h
            """,
        )
        assert findings == []

    def test_wide_arithmetic_is_clean(self):
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def scan(n, ramp):
                acc = np.zeros(n, dtype=np.int64)
                np.add(acc, ramp, out=acc)
                return acc + 1
            """,
        )
        assert findings == []

    def test_closure_shares_enclosing_guard(self):
        # A nested helper mutating the outer function's narrow arrays
        # is covered by the outer function's clamp — one analysis unit.
        findings = run_rule(
            DtypeStabilityRule(),
            "repro/engine/striped.py",
            """
            import numpy as np

            def sweep(n, sig):
                f = np.zeros(n, dtype=np.uint8)

                def extend():
                    np.maximum(f, sig, out=f)
                    np.subtract(f, sig, out=f)

                extend()
                return f
            """,
        )
        assert findings == []


class TestUnseededRandomRule:
    def test_unseeded_default_rng_is_flagged(self):
        findings = run_rule(
            UnseededRandomRule(),
            "repro/engine/r.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL103"]

    def test_legacy_global_call_is_flagged(self):
        findings = run_rule(
            UnseededRandomRule(),
            "repro/sequence/synthetic.py",
            """
            import numpy as np

            def f(n):
                return np.random.randint(0, 20, size=n)
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL103"]

    def test_seeded_and_threaded_rng_are_clean(self):
        findings = run_rule(
            UnseededRandomRule(),
            "repro/sequence/mutate.py",
            """
            import numpy as np

            def f(n, rng: np.random.Generator):
                return rng.integers(0, 20, size=n)

            def g(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert findings == []


class TestExceptSwallowRule:
    def test_bare_except_is_flagged(self):
        findings = run_rule(
            ExceptSwallowRule(),
            "repro/engine/e.py",
            """
            def f():
                try:
                    work()
                except:
                    pass
            """,
        )
        assert findings
        assert all(f.rule_id == "RPL105" for f in findings)

    def test_silent_pass_handler_is_flagged(self):
        findings = run_rule(
            ExceptSwallowRule(),
            "repro/app/a.py",
            """
            def f():
                try:
                    work()
                except ValueError:
                    pass
            """,
        )
        assert [f.rule_id for f in findings] == ["RPL105"]

    def test_handler_that_acts_is_clean(self):
        findings = run_rule(
            ExceptSwallowRule(),
            "repro/engine/e.py",
            """
            def f(log):
                try:
                    work()
                except ValueError as exc:
                    log.warning("failed: %s", exc)
                    raise
            """,
        )
        assert findings == []


class TestPublicApiDocsRule:
    def test_missing_docstring_and_annotations_flagged(self):
        findings = run_rule(
            PublicApiDocsRule(),
            "repro/app/a.py",
            """
            def search(query, db):
                return None
            """,
        )
        messages = " ".join(f.message for f in findings)
        assert all(f.rule_id == "RPL106" for f in findings)
        assert "docstring" in messages
        assert "unannotated" in messages

    def test_documented_annotated_api_is_clean(self):
        findings = run_rule(
            PublicApiDocsRule(),
            "repro/app/a.py",
            '''
            class Runner:
                """Runs things."""

                def __init__(self, n: int) -> None:
                    self.n = n

                def go(self) -> int:
                    """Go."""
                    return self.n

                def _helper(self, anything):
                    return anything

            def _private(x):
                return x
            ''',
        )
        assert findings == []

    def test_init_needs_annotations_but_not_docstring(self):
        findings = run_rule(
            PublicApiDocsRule(),
            "repro/app/a.py",
            '''
            class Runner:
                """Runs things."""

                def __init__(self, n):
                    self.n = n
            ''',
        )
        assert [f.rule_id for f in findings] == ["RPL106"]
        assert "__init__" in findings[0].message


class TestParseErrors:
    def test_unparseable_source_yields_rpl100(self):
        runner = LintRunner("/nonexistent-root", rules=[DtypeStabilityRule()])
        result = runner.run_sources({"repro/kernels/bad.py": "def broken(:\n"})
        assert [f.rule_id for f in result.findings] == ["RPL100"]
