"""Baseline round-trip: write, load, filter, ratchet semantics."""

import json

import pytest

from repro.lint.baseline import BASELINE_SCHEMA, Baseline
from repro.lint.findings import Finding


def make_finding(message="np.zeros without dtype", line=10, qualname="",
                 context=""):
    return Finding(
        path="repro/kernels/k.py",
        line=line,
        col=4,
        rule_id="RPL102",
        rule_name="dtype-stability",
        message=message,
        qualname=qualname,
        context=context,
    )


class TestRoundTrip:
    def test_write_then_load_absorbs_same_findings(self, tmp_path):
        findings = [make_finding(), make_finding(message="other", line=20)]
        path = tmp_path / "baseline.json"
        Baseline().write(path, findings)
        loaded = Baseline.load(path)
        new, absorbed = loaded.filter(findings)
        assert new == []
        assert absorbed == 2

    def test_fingerprint_is_line_insensitive(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().write(path, [make_finding(line=10)])
        moved = [make_finding(line=99)]  # same defect, file edited above it
        new, absorbed = Baseline.load(path).filter(moved)
        assert new == []
        assert absorbed == 1

    def test_second_instance_overflows_the_budget(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().write(path, [make_finding()])
        two = [make_finding(line=10), make_finding(line=30)]
        new, absorbed = Baseline.load(path).filter(two)
        assert absorbed == 1
        assert len(new) == 1  # the ratchet: duplicates are new findings

    def test_new_finding_is_not_absorbed(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().write(path, [make_finding()])
        fresh = [make_finding(message="a brand new defect")]
        new, absorbed = Baseline.load(path).filter(fresh)
        assert absorbed == 0
        assert len(new) == 1


class TestFingerprintStability:
    def test_fingerprint_survives_context_whitespace_change(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = make_finding(
            qualname="sweep", context="h = np.zeros(n)"
        )
        Baseline().write(path, [original])
        reformatted = make_finding(
            line=42, qualname="sweep", context="h  =  np.zeros( n )"
        )
        new, absorbed = Baseline.load(path).filter([reformatted])
        assert new == []
        assert absorbed == 1

    def test_moved_to_other_function_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().write(
            path, [make_finding(qualname="sweep", context="h = np.zeros(n)")]
        )
        elsewhere = [
            make_finding(qualname="other", context="h = np.zeros(n)")
        ]
        new, absorbed = Baseline.load(path).filter(elsewhere)
        assert absorbed == 0
        assert len(new) == 1


class TestLegacyBaseline:
    """Version-1 files (rule+path+message keys) still absorb findings."""

    def _write_v1(self, path, finding):
        key = finding.legacy_fingerprint()
        path.write_text(json.dumps({
            "schema": BASELINE_SCHEMA,
            "version": 1,
            "findings": {
                key: {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "message": finding.message,
                    "count": 1,
                },
            },
        }))

    def test_v1_file_absorbs_matching_finding(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = make_finding(qualname="sweep", context="h = np.zeros(n)")
        self._write_v1(path, finding)
        new, absorbed = Baseline.load(path).filter([finding])
        assert new == []
        assert absorbed == 1

    def test_rewrite_migrates_v1_to_current(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = make_finding(qualname="sweep", context="h = np.zeros(n)")
        self._write_v1(path, finding)
        Baseline().write(path, [finding])
        doc = json.loads(path.read_text())
        assert doc["version"] == 2
        assert finding.fingerprint() in doc["findings"]


class TestSchema:
    def test_document_shape(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().write(
            path, [make_finding(qualname="kernel", context="h = x + y")]
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == BASELINE_SCHEMA
        assert doc["version"] == 2
        (entry,) = doc["findings"].values()
        assert entry == {
            "rule": "RPL102",
            "path": "repro/kernels/k.py",
            "qualname": "kernel",
            "context": "h = x + y",
            "message": "np.zeros without dtype",
            "count": 1,
        }

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_foreign_schema_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something.else", "findings": {}}')
        with pytest.raises(ValueError, match="not a lint baseline"):
            Baseline.load(path)
