"""Property tests of the cost model: physical sanity under perturbation.

A cost model that can be gamed (more work costing less time, caches
hurting, idle devices outrunning busy ones) silently corrupts every
experiment built on it; these tests pin the model's monotonicities.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda import (
    CacheConfig,
    CostModel,
    KernelCounts,
    LaunchConfig,
    TESLA_C1060,
    TESLA_C2050,
)

work_units = st.integers(min_value=1, max_value=10**9)
seeds = st.integers(min_value=0, max_value=2**31)


def random_counts(rng) -> KernelCounts:
    cells = int(rng.integers(1, 10**8))
    return KernelCounts(
        cells=cells,
        alu_ops=cells * int(rng.integers(1, 40)),
        global_load_transactions=int(rng.integers(0, cells)),
        global_store_transactions=int(rng.integers(0, cells)),
        global_bytes_loaded=int(rng.integers(0, 32 * cells)),
        global_bytes_stored=int(rng.integers(0, 32 * cells)),
        shared_loads=int(rng.integers(0, 4 * cells)),
        shared_stores=int(rng.integers(0, 4 * cells)),
        texture_fetches=int(rng.integers(0, cells)),
        syncs=int(rng.integers(0, cells // 64 + 1)),
        wavefront_steps=int(rng.integers(0, cells // 64 + 1)),
        passes=int(rng.integers(0, 10)),
    )


def random_launch(rng) -> LaunchConfig:
    return LaunchConfig(
        grid_blocks=int(rng.integers(1, 2000)),
        threads_per_block=int(rng.choice([64, 128, 256])),
        registers_per_thread=int(rng.integers(8, 48)),
        shared_mem_per_block=int(rng.integers(0, 8192)),
        step_memory=str(rng.choice(["none", "shared", "global"])),
    )


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_time_positive_and_finite(seed):
    rng = np.random.default_rng(seed)
    counts, launch = random_counts(rng), random_launch(rng)
    for device in (TESLA_C1060, TESLA_C2050):
        t = CostModel(device).kernel_time(counts, launch)
        assert 0 < t.total < 1e6
        assert t.total >= max(t.t_alu, t.t_dram, t.t_texture, t.t_shared)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, factor=st.integers(min_value=2, max_value=8))
def test_more_work_never_faster(seed, factor):
    rng = np.random.default_rng(seed)
    counts, launch = random_counts(rng), random_launch(rng)
    model = CostModel(TESLA_C1060)
    base = model.kernel_time(counts, launch).total
    scaled = model.kernel_time(counts.scaled(factor), launch).total
    assert scaled >= base


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_cache_never_hurts(seed):
    rng = np.random.default_rng(seed)
    counts, launch = random_counts(rng), random_launch(rng)
    profile = CacheConfig(
        working_set_bytes=int(rng.integers(1, 10**6)),
        reuse_factor=float(rng.uniform(1.0, 8.0)),
        streaming=bool(rng.integers(0, 2)),
    )
    on = CostModel(TESLA_C2050).kernel_time(counts, launch, profile).total
    off = CostModel(TESLA_C2050, cache_enabled=False).kernel_time(
        counts, launch, profile
    ).total
    assert on <= off * (1 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_more_bandwidth_never_slower(seed):
    rng = np.random.default_rng(seed)
    counts, launch = random_counts(rng), random_launch(rng)
    slow = TESLA_C1060
    fast = dataclasses.replace(slow, global_bandwidth_gbps=2 * slow.global_bandwidth_gbps)
    t_slow = CostModel(slow).kernel_time(counts, launch).total
    t_fast = CostModel(fast).kernel_time(counts, launch).total
    assert t_fast <= t_slow * (1 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_bigger_grid_never_slower_for_same_work(seed):
    """Spreading fixed total work over more blocks cannot hurt."""
    rng = np.random.default_rng(seed)
    counts = random_counts(rng)
    launch_small = LaunchConfig(4, 256, 30, 2048)
    launch_big = LaunchConfig(400, 256, 30, 2048)
    model = CostModel(TESLA_C1060)
    t_small = model.kernel_time(counts, launch_small).total
    t_big = model.kernel_time(counts, launch_big).total
    assert t_big <= t_small * (1 + 1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, launches=st.integers(min_value=1, max_value=50))
def test_launch_overhead_additive(seed, launches):
    rng = np.random.default_rng(seed)
    counts, launch = random_counts(rng), random_launch(rng)
    model = CostModel(TESLA_C1060)
    one = model.kernel_time(counts, launch, launches=1)
    many = model.kernel_time(counts, launch, launches=launches)
    assert many.total - one.total == pytest.approx(
        (launches - 1) * model.calibration.launch_overhead_us * 1e-6
    )


def test_zero_work_costs_only_launch():
    model = CostModel(TESLA_C1060)
    t = model.kernel_time(KernelCounts(), LaunchConfig(1, 32, 8, 0))
    assert t.total == pytest.approx(model.calibration.launch_overhead_us * 1e-6)
