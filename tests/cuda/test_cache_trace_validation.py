"""Trace-driven validation of the analytic cache model.

The cost model's Fermi story rests on
:class:`repro.cuda.cache.CacheHierarchyModel`'s regimes: wavefront
traffic (original kernel) caches well when the live diagonals fit, while
strip-boundary traffic (improved kernel) is touch-once streaming.  These
tests *derive* those regimes by feeding the kernels' actual address
patterns into the exact set-associative LRU simulator — the analytic
model's assumptions, checked against a mechanism-level ground truth.
"""

import pytest

from repro.cuda import (
    CacheConfig,
    CacheHierarchyModel,
    SetAssociativeCache,
    TESLA_C2050,
)

WORD = 4


def original_kernel_trace(m: int, n: int, cache: SetAssociativeCache) -> None:
    """Replay the original intra-task kernel's global traffic for one
    pair: per anti-diagonal, load the two previous H diagonals plus the E
    and F diagonals, store the new H/E/F.

    Five same-sized circular buffers in global memory (3 x H, E, F),
    touched wavefront-by-wavefront — exactly the layout the kernel's
    cache profile (`5 * min(m, n)` words, reuse ~3) abstracts.
    """
    size = min(m, n) * WORD
    base = {name: i * size for i, name in enumerate("hABC ef")}
    h_bufs = [base["h"], base["A"], base["B"]]
    e_buf, f_buf = base["e"], base["f"]
    for k in range(2, m + n + 1):
        lo = max(1, k - n)
        hi = min(m, k - 1)
        if lo > hi:
            continue
        length = (hi - lo + 1) * WORD
        cur, prev, prev2 = h_bufs[k % 3], h_bufs[(k - 1) % 3], h_bufs[(k - 2) % 3]
        # Loads: H(k-1) twice (i and i-1 neighbours share lines), H(k-2),
        # E(k-1), F(k-1).
        for buf in (prev, prev, prev2, e_buf, f_buf):
            cache.access_range(buf, length)
        # Stores: H, E, F of the new diagonal.
        for buf in (cur, e_buf, f_buf):
            cache.access_range(buf, length)


def improved_kernel_trace(m: int, n: int, strip: int, cache: SetAssociativeCache) -> None:
    """Replay the improved kernel's global traffic: the boundary row (H
    and F per column) written once per strip and read once a whole strip
    later — touch-once at cache time scales."""
    buf_h, buf_f = 0, n * WORD
    passes = -(-m // strip)
    for p in range(passes):
        for j in range(n):
            if p > 0:
                cache.access(buf_h + j * WORD)
                cache.access(buf_f + j * WORD)
            if p < passes - 1:
                cache.access(buf_h + j * WORD)
                cache.access(buf_f + j * WORD)


class TestOriginalKernelTrace:
    def test_fitting_wavefronts_hit_hard(self):
        """min(m, n) small: five live diagonals fit L1 -> high hit rate,
        matching the analytic model's reuse-limit regime."""
        cache = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
        original_kernel_trace(400, 700, cache)
        assert cache.hit_rate > 0.6

        model = CacheHierarchyModel(TESLA_C2050)
        analytic = model.hit_rate(
            CacheConfig(working_set_bytes=5 * 400 * WORD, reuse_factor=3.0),
            blocks_per_sm=1,
            concurrent_blocks=1,
        )
        # Same regime: both well above half.
        assert analytic > 0.6

    def test_oversized_wavefronts_degrade(self):
        """A wavefront working set far beyond the cache thrashes it."""
        small = SetAssociativeCache(4 * 1024, 128, 8)
        original_kernel_trace(400, 700, small)
        big = SetAssociativeCache(64 * 1024, 128, 8)
        original_kernel_trace(400, 700, big)
        assert small.hit_rate < big.hit_rate

    def test_hit_rate_grows_with_cache_like_model_coverage(self):
        """Trace hit rate and the analytic coverage move together as the
        cache grows."""
        model_points = []
        trace_points = []
        ws = 5 * 600 * WORD
        for size_kb in (2, 8, 32, 128):
            cache = SetAssociativeCache(size_kb * 1024, 128, 8)
            original_kernel_trace(600, 900, cache)
            trace_points.append(cache.hit_rate)
            coverage = min(1.0, size_kb * 1024 / ws)
            model_points.append((1 - 1 / 3.0) * coverage)
        assert trace_points == sorted(trace_points)
        assert model_points == sorted(model_points)


class TestImprovedKernelTrace:
    def test_boundary_traffic_is_streaming(self):
        """The boundary row returns a whole strip later: at realistic
        boundary sizes it has left even a generous cache, so the analytic
        model's `streaming=True` (zero benefit) is the right call."""
        cache = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
        improved_kernel_trace(4096, 20_000, 1024, cache)
        # Only spatial locality within a 128-byte line survives (the
        # paired H/F touches); no temporal reuse across strips.
        spatial_only = cache.hit_rate
        tiny = SetAssociativeCache(1024, 128, 8)
        improved_kernel_trace(4096, 20_000, 1024, tiny)
        assert spatial_only == pytest.approx(tiny.hit_rate, abs=0.02)

    def test_small_boundary_rows_would_cache(self):
        """Sanity check of the mechanism: when the boundary row *does* fit
        (short database sequence), the trace shows reuse — the improved
        kernel just never benefits because such pairs also finish in one
        strip."""
        cache = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
        improved_kernel_trace(4096, 500, 1024, cache)
        assert cache.hit_rate > 0.5


def test_cache_model_cross_validation_summary():
    """End to end: on the same (m, n), the exact traces reproduce the
    analytic model's central inequality — the original kernel gains a lot
    from Fermi's caches, the improved kernel essentially nothing."""
    m, n = 567, 4000
    orig = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
    original_kernel_trace(m, n, orig)
    imp = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
    improved_kernel_trace(m, n, 1024, imp)
    # Temporal reuse difference: the improved kernel's single-strip case
    # has *no* boundary traffic at all; force multiple strips for a trace.
    imp2 = SetAssociativeCache(TESLA_C2050.l1_bytes_per_sm, 128, 8)
    improved_kernel_trace(5478, n, 1024, imp2)
    assert orig.hit_rate > 0.6
    assert imp2.hit_rate < orig.hit_rate
