"""Tests for device specs and the occupancy calculator."""

import pytest

from repro.cuda import TESLA_C1060, TESLA_C2050, DEVICES, occupancy


class TestDeviceSpecs:
    def test_c1060_geometry(self):
        d = TESLA_C1060
        assert d.num_sms == 30
        assert d.cores_per_sm == 8
        assert d.total_cores == 240
        assert not d.has_l1_l2
        assert not d.is_fermi

    def test_c2050_geometry(self):
        d = TESLA_C2050
        assert d.num_sms == 14
        assert d.total_cores == 448
        assert d.has_l1_l2
        assert d.is_fermi
        assert d.l2_bytes == 768 * 1024

    def test_peak_throughputs(self):
        # 240 cores x 1.296 GHz = 311 Gops/s.
        assert TESLA_C1060.instruction_throughput_per_second == pytest.approx(
            311.04e9
        )
        assert TESLA_C2050.instruction_throughput_per_second == pytest.approx(
            515.2e9
        )

    def test_bandwidths(self):
        assert TESLA_C1060.global_bandwidth_bytes_per_second == 102e9
        assert TESLA_C2050.global_bandwidth_bytes_per_second == 144e9

    def test_cycles_to_seconds(self):
        assert TESLA_C1060.cycles_to_seconds(1.296e9) == pytest.approx(1.0)

    def test_devices_registry(self):
        assert DEVICES["C1060"] is TESLA_C1060
        assert DEVICES["C2050"] is TESLA_C2050

    def test_validation(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C1060, num_sms=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C1060, max_threads_per_block=100)
        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C2050, l2_bytes=0)


class TestOccupancy:
    def test_register_limited(self):
        # 256 threads x 30 regs = 7680 regs/block; C1060 has 16384/SM -> 2.
        occ = occupancy(TESLA_C1060, 256, 30, 0)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "registers"
        assert occ.resident_threads_per_sm == 512
        assert occ.occupancy == 0.5

    def test_thread_slot_limited(self):
        occ = occupancy(TESLA_C1060, 512, 8, 0)
        # 16384/(8*512) = 4 register limit, 1024/512 = 2 thread limit.
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "thread slots"

    def test_shared_limited(self):
        occ = occupancy(TESLA_C1060, 64, 8, 9 * 1024)
        assert occ.limited_by == "shared memory"
        assert occ.blocks_per_sm == 1

    def test_block_slot_limited(self):
        occ = occupancy(TESLA_C2050, 32, 8, 0)
        assert occ.blocks_per_sm == TESLA_C2050.max_blocks_per_sm
        assert occ.limited_by == "block slots"

    def test_concurrent_threads_device(self):
        occ = occupancy(TESLA_C1060, 256, 16, 0)
        assert (
            occ.concurrent_threads_device
            == occ.blocks_per_sm * 256 * TESLA_C1060.num_sms
        )

    def test_warp_multiple_required(self):
        with pytest.raises(ValueError, match="warp"):
            occupancy(TESLA_C1060, 100, 16, 0)

    def test_too_many_threads(self):
        with pytest.raises(ValueError, match="exceeds"):
            occupancy(TESLA_C1060, 1024, 16, 0)

    def test_too_many_registers(self):
        with pytest.raises(ValueError, match="registers"):
            occupancy(TESLA_C2050, 256, 200, 0)

    def test_too_much_shared(self):
        with pytest.raises(ValueError, match="shared"):
            occupancy(TESLA_C1060, 256, 16, 20 * 1024)

    def test_does_not_fit(self):
        # Fits individually but one block demands more registers than an SM.
        with pytest.raises(ValueError, match="does not fit"):
            occupancy(TESLA_C1060, 512, 64, 0)

    def test_zero_resource_usage_ok(self):
        occ = occupancy(TESLA_C2050, 256, 0, 0)
        assert occ.blocks_per_sm >= 1
