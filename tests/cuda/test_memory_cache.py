"""Tests for coalescing rules and the cache models."""

import pytest

from repro.cuda import (
    AccessPattern,
    CacheConfig,
    CacheHierarchyModel,
    SetAssociativeCache,
    TESLA_C1060,
    TESLA_C2050,
    shared_memory_fits,
    transactions_per_warp_access,
)


class TestCoalescing:
    def test_coalesced_full_warp(self):
        # 32 threads x 4 B = 128 B: four 32-B segments on either device
        # model (same min transaction size).
        assert transactions_per_warp_access(TESLA_C1060, AccessPattern.COALESCED) == 4
        assert transactions_per_warp_access(TESLA_C2050, AccessPattern.COALESCED) == 4

    def test_coalesced_partial_warp(self):
        assert (
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.COALESCED, active_threads=8
            )
            == 1
        )

    def test_single_thread_access(self):
        # One thread writing one word still costs a full transaction —
        # the Section VI observation about strip-boundary writes.
        assert (
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.SINGLE_THREAD, active_threads=1
            )
            == 1
        )

    def test_strided_pays_per_thread(self):
        assert (
            transactions_per_warp_access(TESLA_C1060, AccessPattern.STRIDED) == 32
        )

    def test_broadcast(self):
        assert transactions_per_warp_access(TESLA_C1060, AccessPattern.BROADCAST) == 1

    def test_wide_elements(self):
        # 16-byte elements: 32 x 16 = 512 B = 16 segments.
        assert (
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.COALESCED, element_bytes=16
            )
            == 16
        )

    def test_zero_active_threads(self):
        assert (
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.COALESCED, active_threads=0
            )
            == 0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.COALESCED, element_bytes=0
            )
        with pytest.raises(ValueError):
            transactions_per_warp_access(
                TESLA_C1060, AccessPattern.COALESCED, active_threads=33
            )

    def test_shared_memory_fits(self):
        assert shared_memory_fits(TESLA_C1060, 8 * 1024, 2)
        assert not shared_memory_fits(TESLA_C1060, 9 * 1024, 2)
        with pytest.raises(ValueError):
            shared_memory_fits(TESLA_C1060, -1)


class TestSetAssociativeCache:
    def test_geometry(self):
        c = SetAssociativeCache(16 * 1024, 128, 4)
        assert c.num_sets == 32

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 128, 4)  # not a multiple
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 128, 4)

    def test_miss_then_hit(self):
        c = SetAssociativeCache(1024, 32, 2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(31)  # same line
        assert not c.access(32)  # next line
        assert c.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        # Direct-ish: 2 ways, force 3 conflicting lines into one set.
        c = SetAssociativeCache(256, 32, 2)  # 4 sets
        conflict = [0, 4 * 32, 8 * 32]  # all map to set 0
        for a in conflict:
            c.access(a)
        # Line 0 was LRU -> evicted.
        assert not c.access(0)

    def test_lru_refresh_on_hit(self):
        c = SetAssociativeCache(256, 32, 2)
        c.access(0)
        c.access(4 * 32)
        c.access(0)  # refresh line 0
        c.access(8 * 32)  # evicts 4*32, not 0
        assert c.access(0)
        assert not c.access(4 * 32)

    def test_streaming_never_hits(self):
        c = SetAssociativeCache(4 * 1024, 128, 4)
        for addr in range(0, 1024 * 1024, 128):
            c.access(addr)
        assert c.hits == 0

    def test_wavefront_reuse_hits(self):
        """The regime behind the paper's Fermi finding: a wavefront
        working set that fits in cache gets high hit rates."""
        c = SetAssociativeCache(16 * 1024, 128, 8)
        ws = 8 * 1024  # 8 KiB wavefront buffers
        for _sweep in range(4):
            for addr in range(0, ws, 4):
                c.access(addr)
        # First sweep misses (compulsory), later sweeps hit.
        assert c.hit_rate > 0.7

    def test_access_range(self):
        c = SetAssociativeCache(1024, 32, 2)
        hits = c.access_range(0, 64)  # two lines, both cold
        assert hits == 0
        assert c.access_range(0, 64) == 2

    def test_reset(self):
        c = SetAssociativeCache(1024, 32, 2)
        c.access(0)
        c.reset_counters()
        assert c.accesses == 0

    def test_negative_address(self):
        c = SetAssociativeCache(1024, 32, 2)
        with pytest.raises(ValueError):
            c.access(-1)


class TestCacheHierarchyModel:
    def small_ws(self):
        return CacheConfig(working_set_bytes=9_000, reuse_factor=3.5)

    def test_no_cache_on_c1060(self):
        model = CacheHierarchyModel(TESLA_C1060)
        assert model.hit_rate(self.small_ws(), blocks_per_sm=2, concurrent_blocks=60) == 0.0

    def test_disabled_cache_is_zero(self):
        model = CacheHierarchyModel(TESLA_C2050, enabled=False)
        assert model.hit_rate(self.small_ws(), blocks_per_sm=2, concurrent_blocks=28) == 0.0

    def test_fitting_working_set_reaches_reuse_limit(self):
        model = CacheHierarchyModel(TESLA_C2050)
        h = model.hit_rate(self.small_ws(), blocks_per_sm=2, concurrent_blocks=28)
        assert h == pytest.approx(1 - 1 / 3.5)

    def test_oversized_working_set_scales_down(self):
        model = CacheHierarchyModel(TESLA_C2050)
        big = CacheConfig(working_set_bytes=10_000_000, reuse_factor=3.5)
        h = model.hit_rate(big, blocks_per_sm=2, concurrent_blocks=28)
        assert 0 < h < 0.05

    def test_streaming_never_cached(self):
        model = CacheHierarchyModel(TESLA_C2050)
        stream = CacheConfig(working_set_bytes=1024, reuse_factor=8.0, streaming=True)
        assert model.hit_rate(stream, blocks_per_sm=2, concurrent_blocks=28) == 0.0

    def test_none_profile(self):
        model = CacheHierarchyModel(TESLA_C2050)
        assert model.hit_rate(None, blocks_per_sm=2, concurrent_blocks=28) == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(working_set_bytes=-1, reuse_factor=2.0)
        with pytest.raises(ValueError):
            CacheConfig(working_set_bytes=10, reuse_factor=0.5)

    def test_concurrency_validation(self):
        model = CacheHierarchyModel(TESLA_C2050)
        with pytest.raises(ValueError):
            model.hit_rate(self.small_ws(), blocks_per_sm=0, concurrent_blocks=1)
