"""Tests for KernelCounts, the profiler and the cost model."""

import pytest

from repro.cuda import (
    CacheConfig,
    CostCalibration,
    CostModel,
    CudaProfiler,
    KernelCounts,
    LaunchConfig,
    LaunchRecord,
    TESLA_C1060,
    TESLA_C2050,
)


class TestKernelCounts:
    def test_addition(self):
        a = KernelCounts(cells=10, alu_ops=100)
        b = KernelCounts(cells=5, alu_ops=50, syncs=2)
        c = a + b
        assert c.cells == 15 and c.alu_ops == 150 and c.syncs == 2

    def test_iadd(self):
        a = KernelCounts(cells=1)
        a += KernelCounts(cells=2)
        assert a.cells == 3

    def test_scaled(self):
        a = KernelCounts(cells=3, passes=1).scaled(4)
        assert a.cells == 12 and a.passes == 4

    def test_derived(self):
        a = KernelCounts(
            cells=100,
            global_load_transactions=30,
            global_store_transactions=20,
            global_bytes_loaded=960,
            global_bytes_stored=640,
            shared_loads=5,
            shared_stores=7,
        )
        assert a.global_transactions == 50
        assert a.global_bytes == 1600
        assert a.shared_accesses == 12
        assert a.global_transactions_per_cell() == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelCounts(cells=-1)
        with pytest.raises(TypeError):
            KernelCounts(cells=1.5)
        with pytest.raises(ValueError):
            KernelCounts().global_transactions_per_cell()
        with pytest.raises(ValueError):
            KernelCounts(cells=1).scaled(-1)


class TestCostModelRegimes:
    """The cost model must land on the paper's anchor numbers."""

    CELLS = 200_000_000

    def compute_bound(self):
        return (
            KernelCounts(cells=self.CELLS, alu_ops=self.CELLS * 18),
            LaunchConfig(5000, 256, 30, 4096),
        )

    def memory_bound(self):
        counts = KernelCounts(
            cells=self.CELLS,
            alu_ops=self.CELLS * 20,
            global_load_transactions=self.CELLS * 6,
            global_store_transactions=self.CELLS * 3,
            global_bytes_loaded=self.CELLS * 24,
            global_bytes_stored=self.CELLS * 16,
        )
        launch = LaunchConfig(600, 256, 30, 2048, step_memory="global")
        return counts, launch

    def test_compute_bound_c1060_near_17_gcups(self):
        counts, launch = self.compute_bound()
        t = CostModel(TESLA_C1060).kernel_time(counts, launch)
        assert t.bound_by == "alu"
        assert 14.0 < t.gcups(counts.cells) < 18.0

    def test_memory_bound_c1060_near_1_5_gcups(self):
        counts, launch = self.memory_bound()
        t = CostModel(TESLA_C1060).kernel_time(counts, launch)
        assert t.bound_by == "dram"
        assert 1.0 < t.gcups(counts.cells) < 2.2

    def test_fermi_cache_rescues_memory_bound(self):
        """The Section IV-A finding: caching helps the traffic-heavy kernel
        a lot, and disabling it (Figure 6) takes the benefit away."""
        counts, launch = self.memory_bound()
        profile = CacheConfig(working_set_bytes=9_000, reuse_factor=3.5)
        on = CostModel(TESLA_C2050).kernel_time(counts, launch, profile)
        off = CostModel(TESLA_C2050, cache_enabled=False).kernel_time(
            counts, launch, profile
        )
        assert on.cache_hit_rate > 0.5
        assert off.cache_hit_rate == 0.0
        assert on.total < 0.6 * off.total

    def test_cache_does_not_help_compute_bound(self):
        counts, launch = self.compute_bound()
        profile = CacheConfig(working_set_bytes=9_000, reuse_factor=3.5)
        on = CostModel(TESLA_C2050).kernel_time(counts, launch, profile)
        off = CostModel(TESLA_C2050, cache_enabled=False).kernel_time(
            counts, launch, profile
        )
        assert on.total == pytest.approx(off.total, rel=0.02)

    def test_small_grid_limits_throughput(self):
        counts, _ = self.compute_bound()
        big = CostModel(TESLA_C1060).kernel_time(
            counts, LaunchConfig(5000, 256, 30, 4096)
        )
        tiny = CostModel(TESLA_C1060).kernel_time(
            counts, LaunchConfig(3, 256, 30, 4096)
        )
        assert tiny.total > 5 * big.total  # only 3 of 30 SMs active

    def test_sync_overhead_appears_on_critical_path(self):
        counts = KernelCounts(cells=1000, alu_ops=1000, syncs=100_000)
        launch = LaunchConfig(1, 256, 30, 4096, step_memory="shared")
        t = CostModel(TESLA_C1060).kernel_time(counts, launch)
        assert t.t_steps > 0
        assert t.total > t.t_alu

    def test_latency_term_only_for_dependent_global_steps(self):
        shared = KernelCounts(cells=1000, alu_ops=1000, wavefront_steps=10_000)
        glob = KernelCounts(
            cells=1000, alu_ops=1000, wavefront_steps=10_000,
            dependent_global_steps=10_000,
        )
        launch = LaunchConfig(1, 256, 30, 0, step_memory="global")
        t_shared = CostModel(TESLA_C1060).kernel_time(shared, launch)
        t_glob = CostModel(TESLA_C1060).kernel_time(glob, launch)
        assert t_shared.t_latency == 0.0
        assert t_glob.t_latency > 0.0

    def test_launch_overhead_scales(self):
        counts = KernelCounts(cells=1, alu_ops=1)
        launch = LaunchConfig(1, 32, 8, 0)
        model = CostModel(TESLA_C1060)
        one = model.kernel_time(counts, launch, launches=1)
        ten = model.kernel_time(counts, launch, launches=10)
        assert ten.t_launch == pytest.approx(10 * one.t_launch)

    def test_transfer_time(self):
        model = CostModel(TESLA_C1060)
        t = model.transfer_time(5_200_000_000 // 10)
        assert t == pytest.approx(0.1)
        with pytest.raises(ValueError):
            model.transfer_time(-1)

    def test_gcups_requires_positive_time(self):
        counts, launch = self.compute_bound()
        t = CostModel(TESLA_C1060).kernel_time(counts, launch)
        assert t.gcups(10**9) > 0

    def test_render_breakdown(self):
        counts, launch = self.compute_bound()
        t = CostModel(TESLA_C1060).kernel_time(counts, launch)
        text = t.render()
        assert "bound by: alu" in text
        assert "roofline" in text
        assert "total" in text

    def test_launches_validation(self):
        counts, launch = self.compute_bound()
        with pytest.raises(ValueError):
            CostModel(TESLA_C1060).kernel_time(counts, launch, launches=0)

    def test_launch_config_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 256, 30, 0)
        with pytest.raises(ValueError):
            LaunchConfig(1, 256, 30, 0, step_memory="weird")


class TestCalibration:
    def test_default_values_validated(self):
        c = CostCalibration()
        assert c.issue_efficiency_for("Tesla C1060") == pytest.approx(0.95)
        assert c.issue_efficiency_for("unknown") == 1.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            CostCalibration(bandwidth_efficiency=0.0)
        with pytest.raises(ValueError):
            CostCalibration(issue_efficiency={"x": 1.5})
        with pytest.raises(ValueError):
            CostCalibration(store_cache_benefit=2.0)
        with pytest.raises(ValueError):
            CostCalibration(warps_to_hide_alu=0)


class TestProfiler:
    def test_record_and_aggregate(self):
        prof = CudaProfiler()
        prof.record(
            LaunchRecord("inter", KernelCounts(cells=10), 4, 256, time_seconds=0.5)
        )
        prof.record(
            LaunchRecord("intra", KernelCounts(cells=5, global_load_transactions=7),
                         1, 256, time_seconds=0.5)
        )
        prof.record(
            LaunchRecord("inter", KernelCounts(cells=20), 4, 256, time_seconds=1.0)
        )
        assert prof.kernel_names() == ["inter", "intra"]
        assert prof.total_counts("inter").cells == 30
        assert prof.total_counts().cells == 35
        assert prof.global_memory_transactions("intra") == 7
        assert prof.total_time() == pytest.approx(2.0)
        assert prof.time_fraction("intra") == pytest.approx(0.25)

    def test_report_renders(self):
        prof = CudaProfiler()
        prof.record(LaunchRecord("k", KernelCounts(cells=1), 1, 32))
        text = prof.report()
        assert "k" in text and "launches" in text

    def test_time_fraction_requires_time(self):
        prof = CudaProfiler()
        prof.record(LaunchRecord("k", KernelCounts(), 1, 32))
        with pytest.raises(ValueError):
            prof.time_fraction("k")

    def test_reset(self):
        prof = CudaProfiler()
        prof.record(LaunchRecord("k", KernelCounts(), 1, 32))
        prof.reset()
        assert prof.records == []

    def test_launch_record_validation(self):
        with pytest.raises(ValueError):
            LaunchRecord("k", KernelCounts(), 0, 32)
