"""Tests for the nvcc resource model (Section III-A quirks)."""

import pytest

from repro.cuda import (
    KernelSource,
    Loop,
    RegisterArray,
    TESLA_C1060,
    TESLA_C2050,
    compile_kernel,
)


def simple_source(**kwargs):
    defaults = dict(
        name="k",
        scalar_registers=20,
        arrays=(RegisterArray("h", 4),),
        loops=(),
    )
    defaults.update(kwargs)
    return KernelSource(**defaults)


class TestShallowSwapQuirk:
    def test_pointer_swapped_array_goes_local(self):
        src = simple_source(
            arrays=(
                RegisterArray("buf_a", 4, pointer_swapped=True),
                RegisterArray("buf_b", 4, pointer_swapped=True),
            )
        )
        compiled = compile_kernel(src, TESLA_C1060)
        assert set(compiled.local_memory_arrays) == {"buf_a", "buf_b"}
        assert "shallow pointer swap" in compiled.demotion_reasons["buf_a"]
        assert compiled.local_memory_words == 8

    def test_deep_swap_fix_maps_to_registers(self):
        src = simple_source(
            arrays=(
                RegisterArray("buf_a", 4, pointer_swapped=False),
                RegisterArray("buf_b", 4, pointer_swapped=False),
            )
        )
        compiled = compile_kernel(src, TESLA_C1060)
        assert compiled.local_memory_arrays == ()
        assert set(compiled.register_arrays) == {"buf_a", "buf_b"}
        assert compiled.registers_per_thread == 20 + 8


class TestTextureUnrollQuirk:
    def test_texture_loop_blocks_unroll_and_demotes(self):
        src = simple_source(
            arrays=(RegisterArray("tile", 4, indexed_by="rows"),),
            loops=(Loop("rows", 4, contains_texture_fetch=True),),
        )
        compiled = compile_kernel(src, TESLA_C1060)
        assert "rows" not in compiled.unrolled_loops
        assert compiled.local_memory_arrays == ("tile",)
        assert "not unrolled" in compiled.demotion_reasons["tile"]

    def test_hand_unroll_fixes_it(self):
        src = simple_source(
            arrays=(RegisterArray("tile", 4, indexed_by="rows"),),
            loops=(
                Loop("rows", 4, contains_texture_fetch=True, hand_unrolled=True),
            ),
        )
        compiled = compile_kernel(src, TESLA_C1060)
        assert "rows" in compiled.unrolled_loops
        assert compiled.local_memory_arrays == ()

    def test_plain_loop_unrolls(self):
        src = simple_source(
            arrays=(RegisterArray("tile", 4, indexed_by="rows"),),
            loops=(Loop("rows", 4),),
        )
        compiled = compile_kernel(src, TESLA_C1060)
        assert "rows" in compiled.unrolled_loops
        assert compiled.local_memory_arrays == ()


class TestRegisterPressure:
    def test_spill_largest_first(self):
        src = simple_source(
            scalar_registers=50,
            arrays=(
                RegisterArray("small", 8),
                RegisterArray("big", 80),
            ),
        )
        compiled = compile_kernel(src, TESLA_C2050)  # 63 regs/thread limit
        assert "big" in compiled.local_memory_arrays
        assert "small" in compiled.register_arrays
        assert compiled.registers_per_thread == 58
        assert "register pressure" in compiled.demotion_reasons["big"]

    def test_scalars_over_limit_raise(self):
        src = simple_source(scalar_registers=200, arrays=())
        with pytest.raises(ValueError, match="more"):
            compile_kernel(src, TESLA_C2050)

    def test_no_spill_when_fits(self):
        src = simple_source(scalar_registers=10, arrays=(RegisterArray("a", 20),))
        compiled = compile_kernel(src, TESLA_C1060)
        assert not compiled.uses_local_memory
        assert compiled.registers_per_thread == 30


class TestSourceValidation:
    def test_unknown_loop_reference(self):
        with pytest.raises(ValueError, match="unknown loop"):
            simple_source(
                arrays=(RegisterArray("a", 4, indexed_by="nope"),),
            )

    def test_duplicate_arrays(self):
        with pytest.raises(ValueError, match="duplicate"):
            simple_source(arrays=(RegisterArray("a", 4), RegisterArray("a", 2)))

    def test_duplicate_loops(self):
        with pytest.raises(ValueError, match="duplicate"):
            simple_source(loops=(Loop("l", 2), Loop("l", 3)))

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            RegisterArray("a", 0)
        with pytest.raises(ValueError):
            Loop("l", 0)
