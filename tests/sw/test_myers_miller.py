"""Tests for the Myers-Miller linear-space global aligner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty
from repro.sequence import random_protein
from repro.sw import alignment_score, nw_align, nw_align_linear_space, nw_score

GP = GapPenalty.cudasw_default()
residues = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=30)


class TestCorrectness:
    def test_matches_full_table_scores(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            q = random_protein(int(rng.integers(1, 120)), rng)
            d = random_protein(int(rng.integers(1, 120)), rng)
            aln = nw_align_linear_space(q, d, BLOSUM62, GP)
            assert aln.score == nw_score(q, d, BLOSUM62, GP)
            assert alignment_score(aln, BLOSUM62, GP) == aln.score

    @pytest.mark.parametrize(
        "gaps", [GapPenalty(3, 1), GapPenalty(20, 1), GapPenalty(5, 5),
                 GapPenalty(12, 2)]
    )
    def test_gap_models(self, gaps):
        rng = np.random.default_rng(hash((gaps.rho, gaps.sigma)) % 2**31)
        for _ in range(8):
            q = random_protein(int(rng.integers(1, 80)), rng)
            d = random_protein(int(rng.integers(1, 80)), rng)
            aln = nw_align_linear_space(q, d, BLOSUM62, gaps)
            assert aln.score == nw_score(q, d, BLOSUM62, gaps)
            assert alignment_score(aln, BLOSUM62, gaps) == aln.score

    def test_spans_both_sequences(self):
        rng = np.random.default_rng(1)
        q, d = random_protein(40, rng), random_protein(55, rng)
        aln = nw_align_linear_space(q, d, BLOSUM62, GP)
        assert (aln.q_start, aln.q_end) == (0, 40)
        assert (aln.d_start, aln.d_end) == (0, 55)
        assert aln.q_aligned.replace("-", "") == q.text
        assert aln.d_aligned.replace("-", "") == d.text

    def test_degenerate_shapes(self):
        rng = np.random.default_rng(2)
        for m, n in ((1, 1), (1, 50), (50, 1), (2, 2), (2, 60)):
            q, d = random_protein(m, rng), random_protein(n, rng)
            aln = nw_align_linear_space(q, d, BLOSUM62, GP)
            assert aln.score == nw_score(q, d, BLOSUM62, GP)

    def test_identical_sequences(self):
        q = "MKVLAWCRNDE" * 4
        aln = nw_align_linear_space(q, q, BLOSUM62, GP)
        assert aln.identity() == 1.0
        assert aln.cigar == f"{len(q)}M"

    def test_agrees_with_full_table_witness_score(self):
        rng = np.random.default_rng(3)
        q, d = random_protein(70, rng), random_protein(90, rng)
        full = nw_align(q, d, BLOSUM62, GP)
        lin = nw_align_linear_space(q, d, BLOSUM62, GP)
        assert lin.score == full.score

    def test_long_sequences_no_recursion_blowup(self):
        rng = np.random.default_rng(4)
        q, d = random_protein(600, rng), random_protein(500, rng)
        aln = nw_align_linear_space(q, d, BLOSUM62, GP)
        assert alignment_score(aln, BLOSUM62, GP) == aln.score

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nw_align_linear_space("", "MK", BLOSUM62, GP)


@settings(max_examples=50, deadline=None)
@given(q=residues, d=residues)
def test_property_matches_reference(q, d):
    aln = nw_align_linear_space(q, d, BLOSUM62, GP)
    assert aln.score == nw_score(q, d, BLOSUM62, GP)
    assert alignment_score(aln, BLOSUM62, GP) == aln.score


@settings(max_examples=30, deadline=None)
@given(q=residues, d=residues)
def test_property_cheap_gaps(q, d):
    gaps = GapPenalty(2, 1)
    aln = nw_align_linear_space(q, d, BLOSUM62, gaps)
    assert aln.score == nw_score(q, d, BLOSUM62, gaps)
