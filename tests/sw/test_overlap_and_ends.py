"""Tests for overlap (dovetail) alignment and the wavefront end-locator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty
from repro.sequence import Sequence, random_protein
from repro.sw import (
    alignment_score,
    nw_score,
    overlap_align,
    overlap_score,
    sw_score_scalar,
)
from repro.sw.antidiagonal import sw_score_antidiagonal_ends
from repro.sw.scalar import sw_tables_scalar

GP = GapPenalty.cudasw_default()
residues = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=25)


class TestOverlap:
    def test_planted_overlap_scores_perfectly(self):
        rng = np.random.default_rng(0)
        core = random_protein(30, rng, id="core")
        a = Sequence("A", np.concatenate(
            [random_protein(40, rng).codes, core.codes]))
        b = Sequence("B", np.concatenate(
            [core.codes, random_protein(40, rng).codes]))
        perfect = sum(int(BLOSUM62.scores[c, c]) for c in core.codes)
        assert overlap_score(a, b, BLOSUM62, GP) == perfect
        aln = overlap_align(a, b, BLOSUM62, GP)
        assert aln.q_start == 40 and aln.q_end == 70
        assert aln.d_start == 0 and aln.d_end == 30

    def test_witness_verifies(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            q = random_protein(int(rng.integers(1, 60)), rng)
            d = random_protein(int(rng.integers(1, 60)), rng)
            aln = overlap_align(q, d, BLOSUM62, GP)
            assert aln.score == overlap_score(q, d, BLOSUM62, GP)
            assert alignment_score(aln, BLOSUM62, GP) == aln.score

    def test_witness_touches_boundaries(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            q = random_protein(int(rng.integers(2, 50)), rng)
            d = random_protein(int(rng.integers(2, 50)), rng)
            aln = overlap_align(q, d, BLOSUM62, GP)
            assert aln.q_start == 0 or aln.d_start == 0
            assert aln.q_end == len(q) or aln.d_end == len(d)

    @settings(max_examples=40, deadline=None)
    @given(q=residues, d=residues)
    def test_mode_ordering(self, q, d):
        """global <= overlap <= local, always."""
        g = nw_score(q, d, BLOSUM62, GP)
        o = overlap_score(q, d, BLOSUM62, GP)
        loc = sw_score_scalar(q, d, BLOSUM62, GP)
        assert g <= o <= loc

    def test_identical_sequences(self):
        q = "MKVLAWCRND"
        perfect = sum(BLOSUM62.score(c, c) for c in q)
        assert overlap_score(q, q, BLOSUM62, GP) == perfect

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overlap_score("", "MK", BLOSUM62, GP)


class TestAntidiagonalEnds:
    def test_end_cell_achieves_the_score(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            q = random_protein(int(rng.integers(1, 60)), rng)
            d = random_protein(int(rng.integers(1, 60)), rng)
            score, i, j = sw_score_antidiagonal_ends(
                q.codes, d.codes, BLOSUM62, GP
            )
            H, _, _ = sw_tables_scalar(q, d, BLOSUM62, GP)
            assert score == int(H.max())
            assert int(H[i, j]) == score

    def test_tie_break_earliest_diagonal(self):
        # Two identical motifs: the earlier occurrence must be reported.
        q = Sequence.from_text("q", "WWWW")
        d = Sequence.from_text("d", "WWWWPPPPWWWW")
        score, i, j = sw_score_antidiagonal_ends(q.codes, d.codes, BLOSUM62, GP)
        assert score == 4 * 11
        assert (i, j) == (4, 4)  # ends at the first motif

    def test_zero_score_coordinates(self):
        score, i, j = sw_score_antidiagonal_ends(
            BLOSUM62.alphabet.encode("WW"),
            BLOSUM62.alphabet.encode("PP"),
            BLOSUM62,
            GP,
        )
        assert score == 0
        assert (i, j) == (0, 0)
