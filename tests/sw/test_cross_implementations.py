"""Cross-implementation agreement and alignment-witness verification.

Every aligner in ``repro.sw`` must agree with the scalar reference; every
traceback must produce a witness whose re-computed score equals the DP
optimum.
"""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty, dna_matrix
from repro.sequence import random_protein
from repro.sw import (
    alignment_score,
    nw_align,
    nw_score,
    semiglobal_score,
    sw_align,
    sw_align_linear_space,
    sw_score_antidiagonal,
    sw_score_banded,
    sw_score_scalar,
)

GP = GapPenalty.cudasw_default()


def random_pair(rng, max_len=70):
    m = int(rng.integers(1, max_len))
    n = int(rng.integers(1, max_len))
    return random_protein(m, rng, id="q"), random_protein(n, rng, id="d")


@pytest.fixture(scope="module")
def pairs():
    rng = np.random.default_rng(1234)
    return [random_pair(rng) for _ in range(25)]


class TestScoreAgreement:
    def test_antidiagonal_matches_scalar(self, pairs):
        for q, d in pairs:
            assert sw_score_antidiagonal(q, d, BLOSUM62, GP) == sw_score_scalar(
                q, d, BLOSUM62, GP
            )

    def test_full_band_matches_scalar(self, pairs):
        for q, d in pairs:
            band = max(len(q), len(d))
            assert sw_score_banded(q, d, BLOSUM62, GP, band) == sw_score_scalar(
                q, d, BLOSUM62, GP
            )

    def test_banded_is_lower_bound_and_monotone(self, pairs):
        for q, d in pairs[:10]:
            exact = sw_score_scalar(q, d, BLOSUM62, GP)
            prev = 0
            for band in (0, 2, 5, 10, max(len(q), len(d))):
                s = sw_score_banded(q, d, BLOSUM62, GP, band)
                assert prev <= s <= exact
                prev = s

    def test_alternative_gap_models(self, pairs):
        for gaps in (GapPenalty(5, 1), GapPenalty(20, 1), GapPenalty(3, 3)):
            for q, d in pairs[:8]:
                assert sw_score_antidiagonal(
                    q, d, BLOSUM62, gaps
                ) == sw_score_scalar(q, d, BLOSUM62, gaps)

    def test_dna_matrix_agreement(self):
        from repro.alphabet import DNA
        from repro.sequence import Sequence

        rng = np.random.default_rng(7)
        mat = dna_matrix()
        gp = GapPenalty.from_open_extend(5, 2)
        for _ in range(10):
            q = Sequence.random("q", int(rng.integers(1, 50)), rng, DNA)
            d = Sequence.random("d", int(rng.integers(1, 50)), rng, DNA)
            assert sw_score_antidiagonal(q, d, mat, gp) == sw_score_scalar(
                q, d, mat, gp
            )


class TestAlignmentWitnesses:
    def test_traceback_score_is_optimal_and_verified(self, pairs):
        for q, d in pairs:
            opt = sw_score_scalar(q, d, BLOSUM62, GP)
            aln = sw_align(q, d, BLOSUM62, GP)
            assert aln.score == opt
            assert alignment_score(aln, BLOSUM62, GP) == opt

    def test_linear_space_matches_full(self, pairs):
        for q, d in pairs:
            full = sw_align(q, d, BLOSUM62, GP)
            lin = sw_align_linear_space(q, d, BLOSUM62, GP)
            assert lin.score == full.score
            assert alignment_score(lin, BLOSUM62, GP) == full.score

    def test_alignment_coordinates_consistent(self, pairs):
        for q, d in pairs:
            aln = sw_align(q, d, BLOSUM62, GP)
            # Gapped strings reproduce the claimed residue spans.
            assert aln.q_aligned.replace("-", "") == q.text[aln.q_start : aln.q_end]
            assert aln.d_aligned.replace("-", "") == d.text[aln.d_start : aln.d_end]

    def test_zero_score_alignment_is_empty(self):
        aln = sw_align("WWW", "PPP", BLOSUM62, GP)
        assert aln.score == 0
        assert aln.length == 0
        assert aln.cigar == ""

    def test_cigar_roundtrip(self):
        aln = sw_align("MKVLAW", "MKVW", BLOSUM62, GP)
        # Cigar column count equals alignment length.
        total = sum(
            int(run[:-1]) for run in _cigar_runs(aln.cigar)
        )
        assert total == aln.length

    def test_identity_of_self_alignment(self):
        aln = sw_align("MKVLAW", "MKVLAW", BLOSUM62, GP)
        assert aln.identity() == 1.0
        assert aln.cigar == "6M"

    def test_pretty_renders(self):
        aln = sw_align("MKVLAWCRND", "MKVAWCRND", BLOSUM62, GP)
        text = aln.pretty(BLOSUM62, width=5)
        assert "score=" in text and "Query" in text and "Sbjct" in text


def _cigar_runs(cigar):
    import re

    return re.findall(r"\d+[MID]", cigar)


class TestGlobalAndSemiGlobal:
    def test_ordering_invariant(self, pairs):
        # global <= semiglobal <= local, always.
        for q, d in pairs:
            g = nw_score(q, d, BLOSUM62, GP)
            sg = semiglobal_score(q, d, BLOSUM62, GP)
            loc = sw_score_scalar(q, d, BLOSUM62, GP)
            assert g <= sg <= loc

    def test_nw_align_witness(self, pairs):
        for q, d in pairs[:10]:
            aln = nw_align(q, d, BLOSUM62, GP)
            assert aln.score == nw_score(q, d, BLOSUM62, GP)
            assert alignment_score(aln, BLOSUM62, GP) == aln.score
            # Global alignment spans both sequences entirely.
            assert (aln.q_start, aln.q_end) == (0, len(q))
            assert (aln.d_start, aln.d_end) == (0, len(d))

    def test_identical_sequences_global_equals_local(self):
        q = "MKVLAWCRNDE"
        assert nw_score(q, q, BLOSUM62, GP) == sw_score_scalar(q, q, BLOSUM62, GP)

    def test_semiglobal_contained_query(self):
        # Query embedded verbatim in a longer subject: semiglobal equals
        # the perfect-match score (flanks are free).
        q = "MKVLAW"
        d = "GGGG" + q + "PPPP"
        perfect = sum(BLOSUM62.score(c, c) for c in q)
        assert semiglobal_score(q, d, BLOSUM62, GP) == perfect

    def test_global_pays_for_flanks(self):
        q = "MKVLAW"
        d = "GGGG" + q + "PPPP"
        assert nw_score(q, d, BLOSUM62, GP) < semiglobal_score(q, d, BLOSUM62, GP)
