"""Tests for the scalar reference Smith-Waterman against hand-computed cases."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, DNA, GapPenalty, dna_matrix, identity_matrix
from repro.sw import sw_score_scalar, sw_tables_scalar

GP = GapPenalty.cudasw_default()


class TestHandComputed:
    def test_identical_sequences(self):
        # Perfect self-match: sum of diagonal scores.
        text = "MKVLAW"
        expected = sum(BLOSUM62.score(c, c) for c in text)
        assert sw_score_scalar(text, text, BLOSUM62, GP) == expected

    def test_single_symbol(self):
        assert sw_score_scalar("W", "W", BLOSUM62, GP) == 11
        # Negative substitution -> empty alignment is optimal.
        assert sw_score_scalar("W", "P", BLOSUM62, GP) == 0

    def test_no_positive_alignment(self):
        # All cross scores negative: score must be 0.
        assert sw_score_scalar("WWW", "PPP", BLOSUM62, GP) == 0

    def test_local_trims_negative_ends(self):
        # The W-run matches; flanking mismatching context must be dropped.
        core = "WWWW"
        q = "PPP" + core
        d = core + "GGG"
        assert sw_score_scalar(q, d, BLOSUM62, GP) == 4 * 11

    def test_simple_gap(self):
        # q = AAAA, d = AATAA.  Candidate alignments: a contiguous AA run
        # (2*2 = 4); bridging the T with a length-1 gap (4*2 - rho); or a
        # mismatch column over the T using only 4 query residues
        # (2+2-3+2 = 3).
        m = dna_matrix(match=2, mismatch=-3)
        gp = GapPenalty.from_open_extend(5, 2)  # rho = 7: bridge scores 1
        assert sw_score_scalar("AAAA", "AATAA", m, gp) == 4
        # With a cheap gap open the bridge wins: 8 - 2 = 6.
        gp2 = GapPenalty(rho=2, sigma=1)
        assert sw_score_scalar("AAAA", "AATAA", m, gp2) == 6

    def test_gap_extension_pricing(self):
        # AAAA vs AATTTAA, mismatch catastrophic: either bridge the 3 T's
        # with one gap of length 3 (8 - (7+2+2) = -3 -> prefer 2x2 match
        # run) or keep a 2-run.
        m = dna_matrix(match=2, mismatch=-100)
        gp = GapPenalty.from_open_extend(5, 2)
        assert sw_score_scalar("AAAA", "AATTTAA", m, gp) == 4
        # Cheap gaps: bridging wins: 8 - (3+1+1) = 3?  rho=4, sigma=1:
        # gap cost = 4 + 2*1 = 6 -> 8 - 6 = 2 < 4.  Even cheaper:
        gp2 = GapPenalty(rho=2, sigma=1)
        assert sw_score_scalar("AAAA", "AATTTAA", m, gp2) == 8 - (2 + 1 + 1)

    def test_known_small_table(self):
        # Worked example small enough to verify by hand:
        # q = "GG", d = "GAG", identity match 3 / mismatch -2, rho 3 sigma 1.
        mat = identity_matrix(DNA, match=3, mismatch=-2)
        gp = GapPenalty(rho=3, sigma=1)
        # Paths: GG vs GG (d[2:] or gap-bridged G-G vs GAG = 6-3 = 3) or
        # direct GG vs GA = 3-2 = 1; best = G-G vs GAG? cost 6 - 3 = 3;
        # also GG vs AG suffix = 3.  And single G = 3.  Bridge = 3.
        assert sw_score_scalar("GG", "GAG", mat, gp) == 3

    def test_asymmetric_pair_symmetry(self):
        q, d = "MKVLAWCRND", "KVAWRN"
        assert sw_score_scalar(q, d, BLOSUM62, GP) == sw_score_scalar(
            d, q, BLOSUM62, GP
        )


class TestTables:
    def test_boundaries(self):
        H, E, F = sw_tables_scalar("MK", "MKV", BLOSUM62, GP)
        assert H.shape == (3, 4)
        assert np.all(H[0] == 0) and np.all(H[:, 0] == 0)
        assert np.all(H >= 0)

    def test_tables_match_recurrence_spot(self):
        H, E, F = sw_tables_scalar("MM", "MM", BLOSUM62, GP)
        w = BLOSUM62.score("M", "M")
        assert H[1, 1] == w
        assert H[2, 2] == 2 * w

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sw_score_scalar("", "MK", BLOSUM62, GP)
        with pytest.raises(ValueError):
            sw_score_scalar("MK", "", BLOSUM62, GP)

    def test_huge_penalties_rejected(self):
        with pytest.raises(ValueError):
            sw_score_scalar("MK", "MK", BLOSUM62, GapPenalty(2**21, 2**20))

    def test_codes_input(self):
        from repro.alphabet import PROTEIN

        q = PROTEIN.encode("MKV")
        assert sw_score_scalar(q, "MKV", BLOSUM62, GP) == sw_score_scalar(
            "MKV", "MKV", BLOSUM62, GP
        )

    def test_wrong_alphabet_sequence_rejected(self):
        from repro.sequence import Sequence

        s = Sequence.from_text("x", "ACGT", DNA)
        with pytest.raises(ValueError, match="alphabet"):
            sw_score_scalar(s, "MKV", BLOSUM62, GP)
