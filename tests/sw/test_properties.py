"""Hypothesis property tests for the Smith-Waterman substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty, PROTEIN, random_matrix
from repro.sw import (
    alignment_score,
    sw_align,
    sw_score_antidiagonal,
    sw_score_scalar,
)

GP = GapPenalty.cudasw_default()

# Strategy: short protein texts over the 20 standard residues (ambiguity
# codes would be fine too, but standard residues keep shrunk examples
# readable).
residues = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=25)
gap_penalties = st.tuples(
    st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8)
).filter(lambda t: t[1] <= t[0]).map(lambda t: GapPenalty(*t))


@settings(max_examples=60, deadline=None)
@given(q=residues, d=residues)
def test_antidiagonal_equals_scalar(q, d):
    assert sw_score_antidiagonal(q, d, BLOSUM62, GP) == sw_score_scalar(
        q, d, BLOSUM62, GP
    )


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues, gaps=gap_penalties)
def test_agreement_over_gap_models(q, d, gaps):
    assert sw_score_antidiagonal(q, d, BLOSUM62, gaps) == sw_score_scalar(
        q, d, BLOSUM62, gaps
    )


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues)
def test_score_symmetry(q, d):
    """score(q, d) == score(d, q) for a symmetric matrix."""
    assert sw_score_antidiagonal(q, d, BLOSUM62, GP) == sw_score_antidiagonal(
        d, q, BLOSUM62, GP
    )


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues)
def test_score_bounds(q, d):
    """0 <= score <= min(m, n) * max matrix entry."""
    s = sw_score_antidiagonal(q, d, BLOSUM62, GP)
    assert 0 <= s <= min(len(q), len(d)) * BLOSUM62.max_score


@settings(max_examples=40, deadline=None)
@given(q=residues)
def test_self_alignment_is_diagonal_sum(q):
    """Aligning a sequence with itself scores at least the full diagonal."""
    diag = sum(BLOSUM62.score(c, c) for c in q)
    assert sw_score_antidiagonal(q, q, BLOSUM62, GP) >= diag


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues, extra=residues)
def test_monotone_under_database_extension(q, d, extra):
    """Appending residues to the subject can only help a local alignment."""
    base = sw_score_antidiagonal(q, d, BLOSUM62, GP)
    extended = sw_score_antidiagonal(q, d + extra, BLOSUM62, GP)
    assert extended >= base


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues)
def test_substring_scores_no_better(q, d):
    """A local alignment of substrings never beats the full pair."""
    s_full = sw_score_antidiagonal(q, d, BLOSUM62, GP)
    half_q = q[: max(1, len(q) // 2)]
    assert sw_score_antidiagonal(half_q, d, BLOSUM62, GP) <= s_full


@settings(max_examples=40, deadline=None)
@given(q=residues, d=residues)
def test_traceback_witness_verifies(q, d):
    aln = sw_align(q, d, BLOSUM62, GP)
    assert alignment_score(aln, BLOSUM62, GP) == aln.score
    assert aln.score == sw_score_scalar(q, d, BLOSUM62, GP)


@settings(max_examples=25, deadline=None)
@given(q=residues, d=residues, seed=st.integers(min_value=0, max_value=2**31))
def test_agreement_on_random_matrices(q, d, seed):
    """Implementations agree for arbitrary symmetric scoring schemes."""
    rng = np.random.default_rng(seed)
    mat = random_matrix(PROTEIN, rng)
    assert sw_score_antidiagonal(q, d, mat, GP) == sw_score_scalar(q, d, mat, GP)


@settings(max_examples=30, deadline=None)
@given(q=residues, d=residues)
def test_gap_penalty_monotonicity(q, d):
    """Raising gap penalties can never raise the score."""
    cheap = sw_score_antidiagonal(q, d, BLOSUM62, GapPenalty(3, 1))
    pricey = sw_score_antidiagonal(q, d, BLOSUM62, GapPenalty(30, 8))
    assert pricey <= cheap
