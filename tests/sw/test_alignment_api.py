"""Tests for the Alignment record's derived statistics."""

import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.sw import Alignment, alignment_score, sw_align

GP = GapPenalty.cudasw_default()


def make(q_aligned, d_aligned, score=0):
    q_res = sum(1 for c in q_aligned if c != "-")
    d_res = sum(1 for c in d_aligned if c != "-")
    return Alignment(score, 0, q_res, 0, d_res, q_aligned, d_aligned)


class TestDerivedStats:
    def test_positives_counts_conservative_substitutions(self):
        # I-L scores +2 in BLOSUM62 (positive, not identical).
        aln = make("MIL", "MLL")
        assert aln.identity() == pytest.approx(2 / 3)
        assert aln.positives(BLOSUM62) == pytest.approx(1.0)

    def test_gap_columns_and_opens(self):
        aln = make("MK--VLA-W", "MKAA-LAAW")
        # columns: gaps at 2,3 (q), 4 (d), 7 (q) -> 4 gap columns, 3 runs.
        assert aln.gap_columns() == 4
        assert aln.gap_opens() == 3

    def test_no_gaps(self):
        aln = make("MKV", "MKV")
        assert aln.gap_columns() == 0
        assert aln.gap_opens() == 0

    def test_query_coverage(self):
        aln = Alignment(10, 5, 25, 0, 20, "A" * 20, "A" * 20)
        assert aln.query_coverage(100) == pytest.approx(0.20)
        with pytest.raises(ValueError):
            aln.query_coverage(0)

    def test_empty_alignment(self):
        aln = Alignment(0, 0, 0, 0, 0, "", "")
        assert aln.positives(BLOSUM62) == 0.0
        assert aln.gap_columns() == 0
        assert aln.gap_opens() == 0

    def test_gap_opens_matches_affine_charges(self):
        """Re-scoring via alignment_score charges rho exactly gap_opens
        times (plus sigma extensions) — the two views must agree."""
        import numpy as np

        from repro.sequence import random_protein

        rng = np.random.default_rng(0)
        for _ in range(10):
            q = random_protein(int(rng.integers(10, 60)), rng)
            d = random_protein(int(rng.integers(10, 60)), rng)
            aln = sw_align(q, d, BLOSUM62, GP)
            if aln.length == 0:
                continue
            subs = sum(
                BLOSUM62.score(a, b)
                for a, b in zip(aln.q_aligned, aln.d_aligned)
                if a != "-" and b != "-"
            )
            gap_cost = (
                aln.gap_opens() * GP.rho
                + (aln.gap_columns() - aln.gap_opens()) * GP.sigma
            )
            assert subs - gap_cost == alignment_score(aln, BLOSUM62, GP)
