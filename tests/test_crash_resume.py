"""Kill-and-resume determinism: the ISSUE acceptance scenario.

A checkpointed search is SIGKILLed from outside mid-journal (a real
subprocess, a real ``kill -9`` — nothing Python can intercept), then
resumed.  The resumed scores must be bit-identical to an uninterrupted
run, with the ``engine.checkpoint.groups_replayed`` /
``groups_recomputed`` counters proving the journal actually carried
completed work across the crash.  The same contract is exercised
through the CLI for the deadline path (exit code 3 + printed journal
hint, then ``--resume`` finishing the search).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import BatchedEngine, FaultPolicy, pack_database
from repro.sequence import Database, Sequence, random_protein, write_fasta

GP = GapPenalty.cudasw_default()

#: Per-group sleep injected into the crashing child process, so the
#: parent's poll-then-SIGKILL reliably lands mid-run (each group takes
#: at least this long, and there are a dozen of them).
CHILD_GROUP_SLEEP = 0.15


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("crash")
    rng = np.random.default_rng(51)
    query = random_protein(48, rng, id="Q1")
    db_seqs = [
        Sequence.random(f"s{i}", int(n), rng)
        for i, n in enumerate(rng.integers(20, 160, size=48))
    ]
    query_path = tmp / "query.fasta"
    db_path = tmp / "db.fasta"
    write_fasta([query], query_path)
    write_fasta(db_seqs, db_path)
    return {
        "query": query,
        "db": Database.from_sequences(db_seqs),
        "query_path": str(query_path),
        "db_path": str(db_path),
        "tmp": tmp,
    }


#: The crashing child: a checkpointed search with every group sweep
#: slowed, so the parent can kill it between fsync'd appends.
CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import repro.engine.executor as executor
    from repro.alphabet import BLOSUM62, GapPenalty
    from repro.engine import BatchedEngine
    from repro.sequence import Database, read_fasta_file

    db_path, query_path, journal = sys.argv[1:4]
    real = executor.score_packed_group

    def slow(profile, group, gaps):
        time.sleep({sleep})
        return real(profile, group, gaps)

    executor.score_packed_group = slow
    db = Database.from_sequences(read_fasta_file(db_path))
    query = read_fasta_file(query_path)[0]
    BatchedEngine(
        BLOSUM62, GapPenalty.cudasw_default(), group_size=4
    ).search(query, db, checkpoint=journal)
    """
).format(sleep=CHILD_GROUP_SLEEP)


def wait_for_journal_growth(path, *, min_records=2, timeout=30.0):
    """Block until the journal holds at least ``min_records`` group
    appends past its header (each append is >= 60 bytes and fsync'd)."""
    deadline = time.monotonic() + timeout
    floor = 120 + 60 * min_records
    while time.monotonic() < deadline:
        if path.exists() and path.stat().st_size >= floor:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"journal never reached {min_records} records within {timeout}s"
    )


class TestSigkillResume:
    def test_sigkill_mid_journal_then_resume_bit_identical(self, corpus):
        journal = corpus["tmp"] / "killed.wal"
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, corpus["db_path"],
             corpus["query_path"], str(journal)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            wait_for_journal_growth(journal)
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL  # really died by kill
        size_after_kill = journal.stat().st_size

        reference, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(
            corpus["query"], corpus["db"]
        )
        n_groups = len(pack_database(corpus["db"], 4))
        with obs.collect("counters") as instr:
            scores, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )
        assert np.array_equal(scores, reference)
        c = instr.counters.as_dict()
        replayed = c.get("engine.checkpoint.groups_replayed", 0)
        recomputed = c.get("engine.checkpoint.groups_recomputed", 0)
        # The kill landed mid-run: some groups crossed the crash in the
        # journal, the rest were recomputed, and nothing was scored
        # twice.  A record torn by the kill is recomputed, not trusted.
        assert replayed >= 1
        assert recomputed >= 1
        assert replayed + recomputed == n_groups
        assert journal.stat().st_size > size_after_kill  # appends resumed

        # Second resume: the journal is complete, nothing recomputes.
        with obs.collect("counters") as instr2:
            scores2, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )
        assert np.array_equal(scores2, reference)
        c2 = instr2.counters.as_dict()
        assert c2["engine.checkpoint.groups_replayed"] == n_groups
        assert c2.get("engine.checkpoint.groups_recomputed", 0) == 0


class TestDeadlineResume:
    def test_deadline_killed_search_resumes_bit_identical(self, corpus,
                                                          monkeypatch):
        """PR 3's deadline path feeds PR 5's journal: groups finished
        before the deadline are already durable, and --resume finishes
        only the remainder."""
        import repro.engine.executor as executor

        from repro.engine import SearchDeadlineExceeded

        journal = corpus["tmp"] / "deadline.wal"
        real = executor.score_packed_group

        def slow(profile, group, gaps):
            time.sleep(0.15)
            return real(profile, group, gaps)

        monkeypatch.setattr(executor, "score_packed_group", slow)
        engine = BatchedEngine(
            BLOSUM62, GP, group_size=4,
            fault_policy=FaultPolicy(deadline=0.4),
        )
        with pytest.raises(SearchDeadlineExceeded) as excinfo:
            engine.search(corpus["query"], corpus["db"], checkpoint=journal)
        assert excinfo.value.partial  # something finished before expiry
        monkeypatch.undo()

        reference, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(
            corpus["query"], corpus["db"]
        )
        n_groups = len(pack_database(corpus["db"], 4))
        with obs.collect("counters") as instr:
            scores, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )
        assert np.array_equal(scores, reference)
        c = instr.counters.as_dict()
        assert c["engine.checkpoint.groups_replayed"] >= 1
        assert (
            c["engine.checkpoint.groups_replayed"]
            + c.get("engine.checkpoint.groups_recomputed", 0)
            == n_groups
        )


class TestCliResumeFlow:
    def run_cli(self, argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_deadline_exit_3_prints_journal_then_resume_finishes(
        self, corpus
    ):
        journal = corpus["tmp"] / "cli.wal"
        clean_tsv = corpus["tmp"] / "clean.tsv"
        resumed_tsv = corpus["tmp"] / "resumed.tsv"

        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--scores-out", str(clean_tsv)]
        )
        assert code == 0

        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--deadline", "1e-9", "--checkpoint", str(journal)]
        )
        assert code == 3
        assert f"checkpoint journal: {journal}" in text
        assert "--resume" in text
        assert journal.exists()

        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--checkpoint", str(journal), "--resume",
             "--scores-out", str(resumed_tsv)]
        )
        assert code == 0
        assert resumed_tsv.read_text() == clean_tsv.read_text()

    def test_resume_without_checkpoint_is_usage_error(self, corpus):
        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"], "--resume"]
        )
        assert code == 2
        assert "--checkpoint" in text

    def test_stale_journal_refused_with_exit_2(self, corpus):
        journal = corpus["tmp"] / "stale-cli.wal"
        code, _ = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--checkpoint", str(journal)]
        )
        assert code == 0
        # Same journal, different scoring parameters: clean refusal.
        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--checkpoint", str(journal), "--resume",
             "--gap-open", "5", "--gap-extend", "1"]
        )
        assert code == 2
        assert "different search" in text

    def test_checkpoint_rejected_for_non_batched_engine(self, corpus):
        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--engine", "scalar", "--checkpoint", "x.wal"]
        )
        assert code == 2
        assert "batched" in text

    def test_memory_budget_flag_splits_groups_same_scores(self, corpus):
        base_tsv = corpus["tmp"] / "base.tsv"
        budget_tsv = corpus["tmp"] / "budget.tsv"
        code, base_text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--group-size", "16", "--scores-out", str(base_tsv)]
        )
        assert code == 0
        code, text = self.run_cli(
            ["search", corpus["query_path"], corpus["db_path"],
             "--group-size", "16", "--memory-budget-mb", "0.02",
             "--scores-out", str(budget_tsv)]
        )
        assert code == 0
        assert budget_tsv.read_text() == base_tsv.read_text()

        def n_groups(text):
            for line in text.splitlines():
                if "groups of" in line:
                    return int(line.split("engine:")[1].split("groups")[0])
            raise AssertionError("no packing line")

        assert n_groups(text) > n_groups(base_text)
