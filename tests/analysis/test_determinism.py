"""Experiment drivers must be deterministic under a fixed seed.

Reproducibility of the reproduction: every driver regenerates identical
rows when called twice with the same seed, and different seeds perturb
only the sampled workloads, not the qualitative shapes.
"""

import pytest

from repro.analysis import ablation_variants, figure2, table1, threshold_tuning


class TestSeedDeterminism:
    @pytest.mark.parametrize(
        "driver,kwargs",
        [
            (figure2, {"stds": (100, 900, 2100)}),
            (table1, {"scale": 0.5}),
            (ablation_variants, {"scale": 0.5}),
            (threshold_tuning, {"scale": 0.5}),
        ],
        ids=["figure2", "table1", "ablation", "threshold"],
    )
    def test_same_seed_same_rows(self, driver, kwargs):
        a = driver(seed=7, **kwargs)
        b = driver(seed=7, **kwargs)
        assert a.rows == b.rows
        assert a.notes == b.notes

    def test_different_seed_same_shape(self):
        a = figure2(seed=1, stds=(100, 900, 2100))
        b = figure2(seed=2, stds=(100, 900, 2100))
        assert a.rows != b.rows  # workloads differ...
        # ...but the qualitative shape is seed-independent.
        for r in (a, b):
            inter = r.column("inter_gcups")
            assert inter[0] > 2 * min(inter)
