"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plot import ascii_chart, bar_chart


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            [0, 1, 2, 3], {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20, height=8, x_label="x",
        )
        assert "o up" in text and "+ down" in text
        assert "(x)" in text
        # Axis annotations present.
        assert "0" in text and "3" in text

    def test_markers_land_at_extremes(self):
        text = ascii_chart([0, 10], {"s": [0.0, 5.0]}, width=10, height=5)
        rows = [ln for ln in text.splitlines() if "|" in ln]
        # Max value in the top row, min in the bottom row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_flat_series_ok(self):
        text = ascii_chart([0, 1, 2], {"flat": [2.0, 2.0, 2.0]})
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1, 1], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [0.0, 1.0]}, width=2)

    def test_crossover_visible(self):
        """The Figure 2 use case: two crossing curves both render."""
        x = list(range(8))
        inter = [12, 8, 5, 3, 2, 1.5, 1.2, 1.0]
        intra = [1.8] * 8
        text = ascii_chart(x, {"inter": inter, "intra": intra})
        assert text.count("o") >= 5 and text.count("+") >= 1


class TestBarChart:
    def test_render(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], unit=" GCUPs")
        lines = text.splitlines()
        assert lines[0].strip().startswith("a")
        assert lines[1].count("#") > lines[0].count("#")
        assert "GCUPs" in text

    def test_zero_value_bar(self):
        text = bar_chart(["x", "y"], [0.0, 1.0])
        assert "0" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
