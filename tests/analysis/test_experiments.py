"""Integration tests: each experiment driver reproduces its paper shape.

These run the real drivers (full-scale lengths-only databases — cheap)
with reduced sweep grids where the default would be slow.
"""

import pytest

from repro.analysis import (
    ablation_variants,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    future_work,
    param_exploration,
    table1,
    table2,
    threshold_tuning,
)
from repro.analysis.compare import (
    _ablation_checks,
    _fig2_checks,
    _fig3_checks,
    _table1_checks,
    _threshold_checks,
    render_checks,
)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2(stds=(100, 700, 1500, 2300, 2700))

    def test_inter_task_declines(self, result):
        inter = result.column("inter_gcups")
        assert inter[0] > 4 * min(inter)

    def test_intra_task_flat(self, result):
        intra = result.column("intra_gcups")
        assert max(intra) / min(intra) < 1.15

    def test_crossover_found(self, result):
        assert result.extra["crossover_std"] is not None

    def test_claims(self, result):
        assert all(c.holds for c in _fig2_checks(result))


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3(n_points=10, step=200)

    def test_monotone_decline(self, result):
        g = result.column("gcups")
        assert all(a >= b for a, b in zip(g, g[1:]))
        assert g[0] > 1.5 * g[-1]

    def test_intra_time_share_grows(self, result):
        t = result.column("pct_time_intra")
        assert all(a <= b for a, b in zip(t, t[1:]))
        assert t[-1] > 45.0

    def test_claims(self, result):
        assert all(c.holds for c in _fig3_checks(result))


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5(thresholds=(3072, 2200, 1600, 1200))

    def test_improved_always_wins(self, result):
        by = {}
        for dev, kernel, t, _, g, _ in result.rows:
            by[(dev, kernel, t)] = g
        for (dev, kernel, t), g in by.items():
            if kernel == "improved":
                assert g >= by[(dev, "original", t)]

    def test_gain_ranges_match_paper_shape(self, result):
        gains = result.extra["gains"]
        # C1060 gains larger than C2050 gains at both endpoints, and both
        # grow toward the sweep bottom.
        assert gains["C1060"][0] > gains["C2050"][0]
        assert gains["C1060"][1] > gains["C1060"][0]
        assert gains["C2050"][1] > gains["C2050"][0]

    def test_improved_flattens_time_share(self, result):
        shares = {
            (dev, kernel): []
            for dev in ("C1060", "C2050")
            for kernel in ("original", "improved")
        }
        for dev, kernel, _, _, _, tf in result.rows:
            shares[(dev, kernel)].append(tf)
        assert max(shares[("C1060", "improved")]) < 0.6 * max(
            shares[("C1060", "original")]
        )


class TestFigure6:
    def test_cache_off_collapses_fermi_advantage(self):
        r = figure6(thresholds=(3072, 1200))
        assert r.extra["c2050_orig_cache_off"] < 0.85 * r.extra[
            "c2050_orig_cache_on"
        ]


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7(
            query_lengths=(144, 567, 2005, 5478), swps3_sample_rows=15_000
        )

    def test_cudasw_beats_swps3_everywhere(self, result):
        for row in result.rows:
            assert min(row[1:5]) > row[5]

    def test_improved_above_original(self, result):
        for row in result.rows:
            assert row[1] > row[2]  # C2050
            assert row[3] > row[4]  # C1060


class TestTables:
    def test_table1_ratio(self):
        r = table1()
        assert all(c.holds for c in _table1_checks(r))
        # Structure: 2 kernels x 2 queries.
        assert len(r.rows) == 4

    def test_table2_structure_and_gains(self):
        r = table2(query_lengths=(567, 5478), scale=0.5)
        # 6 databases x 2 devices x 2 kernels.
        assert len(r.rows) == 24
        assert all(g > 0 for g in r.extra["gains"].values())


class TestExtras:
    def test_param_exploration_flat_strip_surface(self):
        r = param_exploration(threads=(64, 128, 256), tile_heights=(4, 8))
        by_strip = {}
        for dev, n_th, t_h, strip, g in r.rows:
            by_strip.setdefault((dev, strip), []).append(g)
        for values in by_strip.values():
            if len(values) > 1:
                assert max(values) / min(values) < 1.15

    def test_ablation_ladder(self):
        r = ablation_variants()
        assert all(c.holds for c in _ablation_checks(r))

    def test_threshold_tuning(self):
        r = threshold_tuning()
        assert all(c.holds for c in _threshold_checks(r))
        # The paper's headline: >21 GCUPs on the C2050 after tuning.
        tuned = [row for row in r.rows if row[0] == "paper-tuned"][0]
        assert tuned[3] > r.rows[0][3]

    @pytest.fixture(scope="class")
    def fw(self):
        # Full scale: multi-GPU shards need enough occupancy-sized groups.
        return future_work()

    def test_future_work_features_do_not_hurt_much(self, fw):
        # Coalescing and the persistent pipeline must not lose; the
        # shared-memory-only mode is *allowed* to lose — the model exposes
        # its occupancy cost (a finding EXPERIMENTS.md documents) — but
        # not catastrophically.
        for label, value, pct in fw.rows[1:5]:
            if "shared-memory-only" in label or "combined" in label:
                assert pct >= -12.0, (label, pct)
            else:
                assert pct >= -0.5, (label, pct)

    def test_future_work_multigpu_scaling(self, fw):
        speedups = {row[0]: row[1] for row in fw.rows if "GPUs" in row[0]}
        assert 1.6 < speedups["2 GPUs (speedup, not GCUPs)"] < 2.1
        assert 3.0 < speedups["4 GPUs (speedup, not GCUPs)"] < 4.3


class TestRenderChecks:
    def test_render_shape(self):
        from repro.analysis.compare import ClaimCheck

        checks = [
            ClaimCheck("X", "c", "p", "m", True),
            ClaimCheck("Y", "c2", "p2", "m2", False),
        ]
        text = render_checks(checks)
        assert "PASS" in text and "FAIL" in text and "1/2" in text
