"""Tests for the experiment-result container and rendering."""

import pytest

from repro.analysis.result import ExperimentResult, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "long_header"), [(1, 2.5), (333, 4.125)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert lines[1].startswith("-")
        # Right-aligned columns: the last data cell ends each line.
        assert lines[2].endswith("2.50")
        assert lines[3].endswith("4.12")

    def test_float_digits(self):
        text = format_table(("x",), [(1.23456,)], float_digits=4)
        assert "1.2346" in text

    def test_empty_rows(self):
        text = format_table(("x", "y"), [])
        assert "x" in text


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="demo",
            title="a demo",
            headers=("x", "y"),
            rows=((1, 2.0), (3, 4.0)),
            notes="note here",
        )

    def test_render(self):
        text = self.make().render()
        assert "demo" in text and "note here" in text and "4.00" in text

    def test_column(self):
        assert self.make().column("y") == [2.0, 4.0]
        with pytest.raises(ValueError):
            self.make().column("z")

    def test_row_width_validated(self):
        with pytest.raises(ValueError, match="row width"):
            ExperimentResult("bad", "t", ("a", "b"), ((1,),))
