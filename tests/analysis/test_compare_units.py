"""Unit tests for the claim-checking logic itself.

The checklist is the reproduction's verdict mechanism; its FAIL branches
must actually fire on counterfactual data, or a regression could sail
through as 25/25.  These tests feed hand-built ExperimentResults with
deliberately broken shapes and assert the checks catch them.
"""

from repro.analysis.compare import (
    ClaimCheck,
    _fig2_checks,
    _fig3_checks,
    _fig6_checks,
    _table1_checks,
    _table2_checks,
)
from repro.analysis.result import ExperimentResult


def fig2_result(inter, intra, crossover):
    return ExperimentResult(
        name="figure2",
        title="t",
        headers=("stddev", "mean_len", "inter_gcups", "intra_gcups"),
        rows=tuple(
            (100 * (i + 1), 1000.0, a, b)
            for i, (a, b) in enumerate(zip(inter, intra))
        ),
        extra={"crossover_std": crossover},
    )


class TestFig2Checks:
    def test_healthy_shape_passes(self):
        r = fig2_result([12.0, 6.0, 2.0, 1.0], [1.9, 1.9, 1.9, 1.9], 300)
        assert all(c.holds for c in _fig2_checks(r))

    def test_flat_inter_task_fails(self):
        r = fig2_result([12.0, 11.0, 10.0, 9.5], [1.9] * 4, None)
        checks = _fig2_checks(r)
        assert not checks[0].holds  # no collapse
        assert not checks[2].holds  # no crossover

    def test_wobbly_intra_task_fails(self):
        r = fig2_result([12.0, 6.0, 2.0, 1.0], [1.0, 1.5, 2.5, 3.0], 300)
        assert not _fig2_checks(r)[1].holds


def fig3_result(gcups, time_pct):
    seq_pct = [0.1 * (i + 1) for i in range(len(gcups))]
    seq_pct[-1] = 2.0  # ensure a near-2% point exists
    return ExperimentResult(
        name="figure3",
        title="t",
        headers=("threshold", "pct_seqs_intra", "gcups", "pct_time_intra"),
        rows=tuple(
            (3072 - 100 * i, s, g, t)
            for i, (s, g, t) in enumerate(zip(seq_pct, gcups, time_pct))
        ),
        extra={"drop_factor": gcups[0] / gcups[-1]},
    )


class TestFig3Checks:
    def test_healthy(self):
        r = fig3_result([15.0, 12.0, 9.0, 7.0], [10.0, 25.0, 40.0, 55.0])
        assert all(c.holds for c in _fig3_checks(r))

    def test_non_monotone_fails(self):
        r = fig3_result([15.0, 16.0, 9.0, 7.0], [10.0, 25.0, 40.0, 55.0])
        assert not _fig3_checks(r)[0].holds

    def test_small_time_share_fails(self):
        r = fig3_result([15.0, 12.0, 9.0, 7.0], [5.0, 10.0, 15.0, 20.0])
        assert not _fig3_checks(r)[1].holds


class TestFig6Checks:
    def make(self, on, off):
        return ExperimentResult(
            name="figure6",
            title="t",
            headers=("device", "kernel", "threshold", "pct_seqs_intra",
                     "gcups", "pct_time_intra"),
            rows=(("C2050", "original", 1200, 2.0, off, 50.0),),
            extra={"c2050_orig_cache_on": on, "c2050_orig_cache_off": off},
        )

    def test_collapse_passes(self):
        assert _fig6_checks(self.make(15.0, 10.0))[0].holds

    def test_no_collapse_fails(self):
        assert not _fig6_checks(self.make(15.0, 14.5))[0].holds


class TestTableChecks:
    def test_table1_low_ratio_fails(self):
        r = ExperimentResult(
            name="table1", title="t",
            headers=("kernel", "query_len", "global_transactions"),
            rows=(("Improved Kernel", 567, 100), ("Original Kernel", 567, 900)),
            extra={"ratios": {567: 9.0}},
        )
        assert not _table1_checks(r)[0].holds

    def test_table2_negative_gain_fails(self):
        gains = {
            ("TAIR Arabidopsis Proteins", "C1060"): -0.01,
            ("UniProtKB/Swiss-Prot", "C1060"): 0.2,
            ("TAIR Arabidopsis Proteins", "C2050"): 0.01,
            ("UniProtKB/Swiss-Prot", "C2050"): 0.1,
        }
        r = ExperimentResult(
            name="table2", title="t",
            headers=("database", "pct_over", "gpu", "kernel", "q567"),
            rows=(("x", "0.1%", "C1060", "Original", 10.0),),
            extra={"gains": gains},
        )
        checks = _table2_checks(r)
        assert not checks[0].holds  # a database regressed


class TestClaimCheckRendering:
    def test_render_marks_failures(self):
        from repro.analysis.compare import render_checks

        text = render_checks(
            [
                ClaimCheck("A", "claim a", "p", "m", True),
                ClaimCheck("B", "claim b", "p", "m", False),
            ]
        )
        assert "1/2 claims hold" in text
