"""Tests for the calibration-sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    calibration_grid,
    claim_survival,
    sensitivity_analysis,
)
from repro.cuda.calibration import DEFAULT_CALIBRATION
from repro.sequence import SWISSPROT_PROFILE


class TestCalibrationGrid:
    def test_grid_covers_all_fields(self):
        fields = {f for f, _, _ in calibration_grid()}
        assert "bandwidth_efficiency" in fields
        assert "sync_cycles" in fields
        assert len(fields) == 9

    def test_perturbations_valid(self):
        for field, factor, calib in calibration_grid():
            # Every yielded calibration passed its own validation.
            assert calib is not None
            assert calib != DEFAULT_CALIBRATION or factor == 1.0

    def test_out_of_domain_factors_skipped(self):
        # bandwidth_efficiency x2 would exceed 1.0 -> must be skipped.
        factors = [
            f for field, f, _ in calibration_grid()
            if field == "bandwidth_efficiency"
        ]
        assert 2.0 not in factors
        assert 0.5 in factors


class TestClaimSurvival:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(0)
        return SWISSPROT_PROFILE.build(rng, scale=0.3)

    def test_default_calibration_passes_all(self, db):
        claims = claim_survival(DEFAULT_CALIBRATION, db)
        assert all(claims.values()), claims

    def test_extreme_perturbations_pass(self, db):
        import dataclasses

        rough = dataclasses.replace(
            DEFAULT_CALIBRATION, bandwidth_efficiency=0.3, sync_cycles=100
        )
        claims = claim_survival(rough, db)
        assert all(claims.values()), claims


def test_sensitivity_analysis_full():
    result = sensitivity_analysis(scale=0.3)
    assert result.extra["survived"] == result.extra["total"]
    assert result.extra["total"] >= 30
