"""Tests for the Section IV-B scalability comparison."""

import pytest

from repro.analysis import scalability_comparison


@pytest.fixture(scope="module")
def result():
    # Full scale: the GPU side needs fine-grained inter-task groups (the
    # SWPS3 side is scale-invariant).
    return scalability_comparison(swps3_sample_rows=15_000)


class TestScalability:
    def test_paper_quoted_doublings(self, result):
        assert 1.7 < result.extra["swps3_doubling"] < 2.1
        assert 1.7 < result.extra["gpu_doubling"] < 2.1

    def test_gpu_beats_eight_cores(self, result):
        assert result.extra["gpu_vs_8core"] > 1.0

    def test_rows_cover_both_systems(self, result):
        systems = {row[0] for row in result.rows}
        assert systems == {"SWPS3", "CUDASW++ improved"}
        assert len(result.rows) == 7

    def test_swps3_scaling_near_linear(self, result):
        swps3 = [row[2] for row in result.rows if row[0] == "SWPS3"]
        # 1 -> 2 -> 4 cores each roughly double.
        assert 1.8 < swps3[1] / swps3[0] < 2.1
        assert 1.8 < swps3[2] / swps3[1] < 2.1
