"""Every kernel must compute exact Smith-Waterman scores and its
closed-form counts must equal its functional simulation's counts."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.kernels import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    InterTaskKernel,
    OriginalIntraTaskKernel,
    variant_kernel,
)
from repro.sequence import random_protein
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()

# Small block sizes so multiple strips/chunks are exercised at test scale.
KERNELS = [
    InterTaskKernel(),
    OriginalIntraTaskKernel(threads_per_block=32),
    OriginalIntraTaskKernel(threads_per_block=256),
    ImprovedIntraTaskKernel(ImprovedKernelConfig(threads_per_block=32, tile_height=4)),
    ImprovedIntraTaskKernel(ImprovedKernelConfig(threads_per_block=32, tile_height=8)),
    ImprovedIntraTaskKernel(),  # paper defaults (256, 4)
    ImprovedIntraTaskKernel(
        ImprovedKernelConfig(
            threads_per_block=32, tile_height=4, coalesced_boundary=True
        )
    ),
    ImprovedIntraTaskKernel(
        ImprovedKernelConfig(
            threads_per_block=32, tile_height=4, shared_memory_only=True
        )
    ),
    ImprovedIntraTaskKernel(
        ImprovedKernelConfig(
            threads_per_block=32, tile_height=4, persistent_pipeline=True
        )
    ),
]
KERNEL_IDS = [
    "inter",
    "orig32",
    "orig256",
    "imp32x4",
    "imp32x8",
    "imp256x4",
    "imp-coalesced",
    "imp-shared-only",
    "imp-persistent",
]


@pytest.fixture(scope="module")
def pairs():
    rng = np.random.default_rng(99)
    out = []
    for _ in range(6):
        m = int(rng.integers(1, 300))
        n = int(rng.integers(1, 120))
        out.append((random_protein(m, rng, id="q"), random_protein(n, rng, id="d")))
    # Degenerate shapes that exercise boundaries.
    out.append((random_protein(1, rng), random_protein(1, rng)))
    out.append((random_protein(257, rng), random_protein(1, rng)))
    out.append((random_protein(1, rng), random_protein(97, rng)))
    return out


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
class TestKernelFidelity:
    def test_scores_match_reference(self, kernel, pairs):
        for q, d in pairs:
            run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
            assert run.score == sw_score_scalar(q, d, BLOSUM62, GP), (
                kernel.name,
                len(q),
                len(d),
            )

    def test_counts_formula_equals_simulation(self, kernel, pairs):
        for q, d in pairs:
            run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
            assert run.counts == kernel.pair_counts(len(q), len(d)), (
                kernel.name,
                len(q),
                len(d),
            )

    def test_counts_cells_exact(self, kernel, pairs):
        for q, d in pairs:
            assert kernel.pair_counts(len(q), len(d)).cells == len(q) * len(d)

    def test_empty_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.run_pair(np.array([], dtype=np.uint8), np.zeros(3, np.uint8),
                            BLOSUM62, GP)
        with pytest.raises(ValueError):
            kernel.pair_counts(0, 5)


@pytest.mark.parametrize("name", ["v0-naive", "v1-deep-swap", "v2-hand-unroll",
                                  "v3-query-profile"])
def test_variant_scores_and_counts(name):
    """Broken register mapping must never change the *result*, only the
    memory traffic (that is the whole point of Section III-A)."""
    rng = np.random.default_rng(5)
    kernel = variant_kernel(name)
    q, d = random_protein(150, rng), random_protein(90, rng)
    run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)
    assert run.counts == kernel.pair_counts(150, 90)


def test_alternative_gap_models_and_matrices():
    from repro.alphabet import PROTEIN, random_matrix

    rng = np.random.default_rng(11)
    mat = random_matrix(PROTEIN, rng)
    gaps = GapPenalty(7, 3)
    q, d = random_protein(120, rng), random_protein(70, rng)
    for kernel in (
        InterTaskKernel(),
        OriginalIntraTaskKernel(threads_per_block=32),
        ImprovedIntraTaskKernel(ImprovedKernelConfig(threads_per_block=32)),
    ):
        run = kernel.run_pair(q.codes, d.codes, mat, gaps)
        assert run.score == sw_score_scalar(q, d, mat, gaps), kernel.name
