"""Hypothesis property tests over the kernel models.

Random shapes, random thread-block geometries, random sequences: the
closed-form counts must equal the functional simulation's counts, and the
functional simulation's score must equal the scalar reference — for every
kernel, everywhere in the configuration space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty
from repro.kernels import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    InterTaskKernel,
    OriginalIntraTaskKernel,
)
from repro.sequence import random_protein
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()

shapes = st.tuples(
    st.integers(min_value=1, max_value=140),
    st.integers(min_value=1, max_value=90),
)
seeds = st.integers(min_value=0, max_value=2**31)


def make_pair(m, n, seed):
    rng = np.random.default_rng(seed)
    return random_protein(m, rng), random_protein(n, rng)


@settings(max_examples=25, deadline=None)
@given(shape=shapes, seed=seeds)
def test_inter_task_fidelity(shape, seed):
    m, n = shape
    q, d = make_pair(m, n, seed)
    kernel = InterTaskKernel()
    run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)
    assert run.counts == kernel.pair_counts(m, n)


@settings(max_examples=25, deadline=None)
@given(
    shape=shapes,
    seed=seeds,
    threads=st.sampled_from([32, 64, 128, 256]),
)
def test_original_intra_fidelity(shape, seed, threads):
    m, n = shape
    q, d = make_pair(m, n, seed)
    kernel = OriginalIntraTaskKernel(threads_per_block=threads)
    run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)
    assert run.counts == kernel.pair_counts(m, n)


@settings(max_examples=25, deadline=None)
@given(
    shape=shapes,
    seed=seeds,
    threads=st.sampled_from([32, 64]),
    tile_height=st.sampled_from([4, 8]),
    profile=st.booleans(),
)
def test_improved_intra_fidelity(shape, seed, threads, tile_height, profile):
    m, n = shape
    q, d = make_pair(m, n, seed)
    kernel = ImprovedIntraTaskKernel(
        ImprovedKernelConfig(
            threads_per_block=threads,
            tile_height=tile_height,
            use_query_profile=profile,
        )
    )
    run = kernel.run_pair(q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)
    assert run.counts == kernel.pair_counts(m, n)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=2000),
    seed=seeds,
    count=st.integers(min_value=1, max_value=20),
)
def test_bulk_counts_equal_sum_of_pairs(m, seed, count):
    """The vectorized closed form never drifts from the per-pair one."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 3000, size=count).astype(np.int64)
    for kernel in (
        OriginalIntraTaskKernel(),
        ImprovedIntraTaskKernel(),
        InterTaskKernel(),
    ):
        bulk = kernel.bulk_pair_counts(m, lengths)
        total = kernel.pair_counts(m, int(lengths[0]))
        for n in lengths[1:]:
            total += kernel.pair_counts(m, int(n))
        assert bulk == total, kernel.name


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4000),
    n=st.integers(min_value=1, max_value=4000),
)
def test_count_invariants(m, n):
    """Structural invariants of the closed forms at arbitrary shapes."""
    for kernel in (
        InterTaskKernel(),
        OriginalIntraTaskKernel(),
        ImprovedIntraTaskKernel(),
    ):
        c = kernel.pair_counts(m, n)
        assert c.cells == m * n
        assert c.alu_ops >= c.cells  # several instructions per cell
        assert c.idle_thread_steps >= 0
        assert c.global_bytes <= 64 * c.alu_ops  # sanity ceiling
        assert c.dependent_global_steps <= c.wavefront_steps


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=3000),
    n=st.integers(min_value=64, max_value=4000),
)
def test_improved_traffic_independent_of_n_within_strip(m, n):
    """For a single-strip query the improved kernel's global traffic is a
    constant (bookkeeping), independent of the database length — the
    structural heart of the paper."""
    kernel = ImprovedIntraTaskKernel()  # strip 1024
    if kernel.passes(m) == 1:
        a = kernel.pair_counts(m, n)
        b = kernel.pair_counts(m, n + 500)
        assert a.global_transactions == b.global_transactions


@settings(max_examples=15, deadline=None)
@given(
    seed=seeds,
    size=st.integers(min_value=2, max_value=64),
)
def test_group_alu_charged_by_max(seed, size):
    """Inter-task groups: ALU slots depend only on the longest member."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 1000, size=size).astype(np.int64)
    inter = InterTaskKernel()
    grp = inter.group_counts(200, lengths)
    uniform = inter.group_counts(
        200, np.full(size, int(lengths.max()), dtype=np.int64)
    )
    assert grp.alu_ops == uniform.alu_ops
    assert grp.cells <= uniform.cells
