"""Structural properties of the kernels' counts — the quantities behind
the paper's Figures 2/5/6 and Table I."""

import numpy as np
import pytest

from repro.cuda import CostModel, KernelCounts, TESLA_C1060, TESLA_C2050
from repro.kernels import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    InterTaskKernel,
    OriginalIntraTaskKernel,
    variant_kernel,
)


class TestMemoryTrafficStructure:
    """The paper's central claim: the improved kernel's global traffic is
    per-strip-boundary, the original's is per-cell."""

    def test_original_traffic_scales_with_cells(self):
        k = OriginalIntraTaskKernel()
        a = k.pair_counts(500, 1000)
        b = k.pair_counts(500, 2000)
        assert b.global_bytes == pytest.approx(2 * a.global_bytes, rel=0.01)
        assert a.global_bytes / a.cells == pytest.approx(32.0)

    def test_improved_traffic_scales_with_boundaries(self):
        k = ImprovedIntraTaskKernel()  # strip height 1024
        overhead = (16 + 6) * 4  # fixed per-pair bookkeeping bytes
        one_strip = k.pair_counts(1024, 1000)
        three_strips = k.pair_counts(3 * 1024, 1000)
        # One strip: no interior boundary -> bookkeeping only.
        assert one_strip.global_bytes == overhead
        # Three strips: two boundary rows, 2 words each way per column.
        assert three_strips.global_bytes == (2 * 2 * 1000 * 4) * 2 + overhead

    def test_transaction_reduction_is_orders_of_magnitude(self):
        """Table I's headline: a huge reduction in global transactions."""
        orig = OriginalIntraTaskKernel()
        imp = ImprovedIntraTaskKernel()
        for m in (567, 5478):
            ratio = (
                orig.pair_counts(m, 4424).global_transactions
                / imp.pair_counts(m, 4424).global_transactions
            )
            assert ratio > 50, (m, ratio)

    def test_improved_shared_traffic_replaces_global(self):
        k = ImprovedIntraTaskKernel()
        c = k.pair_counts(1024, 1000)
        assert c.shared_accesses > 100 * c.global_transactions

    def test_inter_task_traffic_is_small(self):
        c = InterTaskKernel().pair_counts(567, 360)
        assert c.global_bytes / c.cells < 3.0  # ~2 B/cell row buffer


class TestImprovedKernelGeometry:
    def test_passes(self):
        k = ImprovedIntraTaskKernel()  # strip = 1024 rows
        assert k.passes(1) == 1
        assert k.passes(1024) == 1
        assert k.passes(1025) == 2
        assert k.passes(5478) == 6  # the paper: "five full passes" + rest

    def test_strip_geometry_warp_rounding(self):
        k = ImprovedIntraTaskKernel()
        (u, a), = k.strip_geometry(567)
        assert u == 142  # ceil(567/4)
        assert a == 160  # rounded to warps

    def test_full_strip_uses_all_threads(self):
        k = ImprovedIntraTaskKernel()
        geometry = k.strip_geometry(2048)
        assert geometry == [(256, 256), (256, 256)]

    def test_strip_height_param(self):
        cfg = ImprovedKernelConfig(threads_per_block=128, tile_height=8)
        assert cfg.strip_height == 1024
        assert ImprovedKernelConfig().strip_height == 1024

    def test_profile_requires_multiple_of_four(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            ImprovedKernelConfig(tile_height=3)
        # Fine without the profile.
        ImprovedKernelConfig(tile_height=3, use_query_profile=False)

    def test_persistent_pipeline_single_pass(self):
        base = ImprovedIntraTaskKernel()
        pers = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(persistent_pipeline=True)
        )
        m, n = 5000, 2000
        assert base.pair_counts(m, n).passes == 5
        assert pers.pair_counts(m, n).passes == 1

    def test_shared_only_eliminates_global(self):
        # Section VI: "the increased amount of shared memory on the Fermi"
        # can hold the boundary rows entirely for shorter sequences.
        so = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(shared_memory_only=True), TESLA_C2050
        )
        c = so.pair_counts(5000, 2000)
        assert c.global_bytes == (16 + 6) * 4  # bookkeeping only
        assert so.shared_only_fits(5000)
        assert not so.shared_only_fits(11_000)  # beyond Fermi's 48 KiB
        # On the C1060's 16 KiB the mode fits only much shorter sequences.
        c1060 = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(shared_memory_only=True)
        )
        assert c1060.shared_only_fits(1000)
        assert not c1060.shared_only_fits(2000)

    def test_coalesced_boundary_cuts_transactions(self):
        base = ImprovedIntraTaskKernel()
        coal = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(coalesced_boundary=True)
        )
        m, n = 5000, 2000
        b, c = base.pair_counts(m, n), coal.pair_counts(m, n)
        assert c.global_transactions < b.global_transactions / 6
        assert c.global_bytes == b.global_bytes  # same words, fewer segments


class TestVariantLadder:
    def test_v0_v1_use_local_memory(self):
        assert variant_kernel("v0-naive").compiled.uses_local_memory
        assert variant_kernel("v1-deep-swap").compiled.uses_local_memory
        assert not variant_kernel("v2-hand-unroll").compiled.uses_local_memory
        assert not variant_kernel("v3-query-profile").compiled.uses_local_memory

    def test_query_profile_cuts_texture_fetches_4x(self):
        """Section III-B: one read for every four cells."""
        v2 = variant_kernel("v2-hand-unroll")
        v3 = variant_kernel("v3-query-profile")
        m, n = 1024, 1000
        # v2 pays one global lookup word per cell instead of profile fetches.
        assert v2.pair_counts(m, n).global_bytes_loaded >= 4 * m * n
        # v3's texture fetches: (1 profile + 1 symbol) per 4-row tile.
        assert v3.pair_counts(m, n).texture_fetches == 2 * (m // 4) * n

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_kernel("v9")

    def test_ladder_is_monotone_in_modeled_speed(self):
        """Each development stage must not be slower than the previous
        (the paper's incremental-improvement narrative)."""
        m, n = 2048, 3000
        model = CostModel(TESLA_C1060)
        gcups = []
        for name in ("v0-naive", "v1-deep-swap", "v2-hand-unroll",
                     "v3-query-profile"):
            k = variant_kernel(name)
            counts = k.pair_counts(m, n).scaled(64)
            t = model.kernel_time(counts, k.launch_config(64), k.cache_profile(m, n))
            gcups.append(counts.cells / t.total / 1e9)
        assert gcups == sorted(gcups)
        # And the overall ladder spans a large factor.
        assert gcups[-1] > 4 * gcups[0]


class TestKernelLevelGcups:
    """Kernel-level throughput anchors (Section II-C of the paper:
    inter-task ~17 GCUPs, original intra-task ~1.5 GCUPs on the C1060;
    Section I: improved intra-task >11x the original)."""

    M = 567

    @pytest.fixture(scope="class")
    def long_lengths(self):
        rng = np.random.default_rng(3)
        return np.maximum(
            rng.lognormal(np.log(4000), 0.35, 619).astype(np.int64), 3072
        )

    def aggregate(self, kernel, lengths):
        counts = KernelCounts()
        for n in lengths:
            counts += kernel.pair_counts(self.M, int(n))
        return counts

    def gcups(self, kernel, lengths, device, cache=True):
        counts = self.aggregate(kernel, lengths)
        model = CostModel(device, cache_enabled=cache)
        t = model.kernel_time(
            counts,
            kernel.launch_config(len(lengths)),
            kernel.cache_profile(self.M, int(np.mean(lengths))),
        )
        return counts.cells / t.total / 1e9

    def test_original_intra_near_paper_anchor(self, long_lengths):
        g = self.gcups(OriginalIntraTaskKernel(), long_lengths, TESLA_C1060)
        assert 1.0 < g < 2.5

    def test_improved_intra_large_speedup(self, long_lengths):
        orig = self.gcups(OriginalIntraTaskKernel(), long_lengths, TESLA_C1060)
        imp = self.gcups(ImprovedIntraTaskKernel(), long_lengths, TESLA_C1060)
        assert imp / orig > 6.0  # paper: "over 11 times"

    def test_fermi_cache_boosts_original_only(self, long_lengths):
        orig_on = self.gcups(OriginalIntraTaskKernel(), long_lengths, TESLA_C2050)
        orig_off = self.gcups(
            OriginalIntraTaskKernel(), long_lengths, TESLA_C2050, cache=False
        )
        imp_on = self.gcups(ImprovedIntraTaskKernel(), long_lengths, TESLA_C2050)
        imp_off = self.gcups(
            ImprovedIntraTaskKernel(), long_lengths, TESLA_C2050, cache=False
        )
        assert orig_on > 1.8 * orig_off  # cache is the original's lifeline
        assert imp_on == pytest.approx(imp_off, rel=0.02)  # and a no-op here

    def test_inter_task_compute_bound_near_anchor(self):
        inter = InterTaskKernel()
        lengths = np.full(15360, 360, dtype=np.int64)
        counts = inter.group_counts(self.M, lengths)
        model = CostModel(TESLA_C1060)
        t = model.kernel_time(
            counts,
            inter.launch_config(15360 // 256),
            inter.cache_profile(self.M, 360),
        )
        g = counts.cells / t.total / 1e9
        assert 14.0 < g < 20.0


class TestInterTaskGroups:
    def test_group_counts_match_pair_counts_for_singleton(self):
        inter = InterTaskKernel()
        single = inter.group_counts(100, np.array([77]))
        pair = inter.pair_counts(100, 77)
        assert single == pair

    def test_group_charges_by_longest(self):
        """The load-imbalance asymmetry behind Figure 2."""
        inter = InterTaskKernel()
        uniform = inter.group_counts(100, np.array([400, 400, 400, 400]))
        skewed = inter.group_counts(100, np.array([100, 100, 100, 400]))
        # Same ALU slots (the longest member dictates the launch)...
        assert skewed.alu_ops == uniform.alu_ops
        # ...but fewer useful cells.
        assert skewed.cells < uniform.cells
        assert skewed.idle_thread_steps > uniform.idle_thread_steps

    def test_group_memory_follows_actual_work(self):
        inter = InterTaskKernel()
        a = inter.group_counts(100, np.array([100, 400]))
        b = inter.group_counts(100, np.array([400, 400]))
        assert a.global_bytes < b.global_bytes

    def test_group_validation(self):
        inter = InterTaskKernel()
        with pytest.raises(ValueError):
            inter.group_counts(0, np.array([10]))
        with pytest.raises(ValueError):
            inter.group_counts(10, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            inter.group_counts(10, np.array([0]))
