"""Tests for Karlin-Altschul statistics."""

import math

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, DNA, GapPenalty, dna_matrix, identity_matrix
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES as FREQ
from repro.stats import (
    KarlinParameters,
    expected_score,
    karlin_lambda,
    karlin_parameters,
    relative_entropy,
)


class TestLambda:
    def test_blosum62_matches_published_value(self):
        """NCBI's ungapped lambda for BLOSUM62 is ~0.3176; with Swiss-Prot
        background frequencies we must land within a percent."""
        lam = karlin_lambda(BLOSUM62, FREQ)
        assert lam == pytest.approx(0.3176, abs=0.005)

    def test_root_property(self):
        """lambda satisfies its defining equation exactly."""
        lam = karlin_lambda(BLOSUM62, FREQ)
        p = FREQ / FREQ.sum()
        total = float(
            np.sum(np.outer(p, p) * np.exp(lam * BLOSUM62.scores.astype(float)))
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_expected_score_negative(self):
        assert expected_score(BLOSUM62, FREQ) < 0

    def test_dna_matrix(self):
        freq = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
        lam = karlin_lambda(dna_matrix(2, -3), freq)
        # BLASTN's +2/-3 ungapped lambda is ~0.625.
        assert lam == pytest.approx(0.625, abs=0.02)

    def test_positive_expected_score_rejected(self):
        # An all-positive matrix has no local-alignment statistics.
        m = identity_matrix(DNA, match=2, mismatch=1)
        freq = np.ones(DNA.size)
        with pytest.raises(ValueError, match="negative"):
            karlin_lambda(m, freq)

    def test_no_positive_score_rejected(self):
        m = identity_matrix(DNA, match=-1, mismatch=-2)
        freq = np.ones(DNA.size)
        with pytest.raises(ValueError, match="positive"):
            karlin_lambda(m, freq)

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            karlin_lambda(BLOSUM62, np.ones(3))
        with pytest.raises(ValueError):
            karlin_lambda(BLOSUM62, np.zeros(BLOSUM62.alphabet.size))

    def test_harsher_mismatches_raise_lambda(self):
        """More stringent scoring concentrates the score distribution."""
        freq = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
        soft = karlin_lambda(dna_matrix(1, -1), freq)
        hard = karlin_lambda(dna_matrix(1, -3), freq)
        assert hard > soft


class TestEntropyAndParameters:
    def test_relative_entropy_positive(self):
        h = relative_entropy(BLOSUM62, FREQ)
        assert 0.2 < h < 1.5  # bits per aligned column, sane range

    def test_parameters_cached(self):
        a = karlin_parameters(BLOSUM62, FREQ)
        b = karlin_parameters(BLOSUM62, FREQ)
        assert a is b

    def test_gapped_lambda_not_above_ungapped(self):
        ungapped = karlin_parameters(BLOSUM62, FREQ)
        gapped = karlin_parameters(BLOSUM62, FREQ, GapPenalty.cudasw_default())
        assert gapped.lam <= ungapped.lam

    def test_k_in_sane_range(self):
        p = karlin_parameters(BLOSUM62, FREQ)
        assert 1e-4 < p.k < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KarlinParameters(lam=0.0, k=0.1, h=0.5, gapped=False)


class TestScores:
    @pytest.fixture(scope="class")
    def params(self):
        return karlin_parameters(BLOSUM62, FREQ)

    def test_bit_score_linear_in_raw(self, params):
        b1 = params.bit_score(50)
        b2 = params.bit_score(100)
        assert b2 > b1
        slope = (b2 - b1) / 50
        assert slope == pytest.approx(params.lam / math.log(2))

    def test_evalue_monotone_decreasing(self, params):
        evs = [params.evalue(s, 500, 10**8) for s in (30, 60, 90, 120)]
        assert evs == sorted(evs, reverse=True)
        assert evs[-1] < 1.0 < evs[0]

    def test_evalue_scales_with_search_space(self, params):
        small = params.evalue(80, 500, 10**6)
        big = params.evalue(80, 500, 10**8)
        assert big == pytest.approx(100 * small)

    def test_pvalue_bounds(self, params):
        for e in (1e-10, 0.1, 5.0, 100.0):
            p = params.pvalue_from_evalue(e)
            assert 0 <= p <= 1
        assert params.pvalue_from_evalue(1e-9) == pytest.approx(1e-9, rel=1e-3)

    def test_evalue_validation(self, params):
        with pytest.raises(ValueError):
            params.evalue(10, 0, 100)


class TestEmpiricalAgreement:
    def test_random_scores_follow_predicted_scale(self):
        """Optimal scores of random pairs grow like ln(mn)/lambda, and the
        predicted E-value at the observed mean score is O(1)."""
        from repro.sw import sw_score_antidiagonal

        rng = np.random.default_rng(0)
        gaps = GapPenalty.cudasw_default()
        params = karlin_parameters(BLOSUM62, FREQ, gaps)
        length = 150
        p = FREQ / FREQ.sum()
        scores = []
        for _ in range(30):
            a = rng.choice(24, size=length, p=p).astype(np.uint8)
            b = rng.choice(24, size=length, p=p).astype(np.uint8)
            scores.append(sw_score_antidiagonal(a, b, BLOSUM62, gaps))
        mean = float(np.mean(scores))
        e_at_mean = params.evalue(mean, length, length)
        # At the distribution's center the expected count of equal-or-
        # better chance hits in one pair is around one (EVD: e^gamma/e ~
        # 0.56..1.8 given estimator noise).
        assert 0.05 < e_at_mean < 20.0
