"""Tests for hit annotation with bit scores and E-values."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.app import CudaSW
from repro.cuda import TESLA_C1060
from repro.sequence import Database, Sequence, random_protein
from repro.stats import ScoreStatistics, annotate_hits


@pytest.fixture(scope="module")
def search_setup():
    rng = np.random.default_rng(0)
    query = random_protein(120, rng, id="query")
    homolog = Sequence(
        "homolog",
        np.concatenate(
            [random_protein(40, rng).codes, query.codes,
             random_protein(40, rng).codes]
        ),
    )
    decoys = [random_protein(200, rng, id=f"d{i}") for i in range(6)]
    db = Database.from_sequences([homolog, *decoys])
    result, _ = CudaSW(TESLA_C1060).search(query, db)
    return query, db, result


class TestScoreStatistics:
    def test_default_protein_frequencies(self):
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        assert stats.parameters.lam > 0

    def test_non_protein_requires_frequencies(self):
        from repro.alphabet import dna_matrix

        with pytest.raises(ValueError, match="frequencies"):
            ScoreStatistics(dna_matrix())
        freq = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
        stats = ScoreStatistics(dna_matrix(), frequencies=freq)
        assert stats.parameters.lam > 0

    def test_significance_threshold(self):
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        t3 = stats.significance_threshold(500, 10**8, evalue=1e-3)
        t6 = stats.significance_threshold(500, 10**8, evalue=1e-6)
        assert t6 > t3 > 0
        # The threshold actually achieves the requested E-value.
        assert stats.evalue(t3, 500, 10**8) <= 1e-3
        assert stats.evalue(t3 - 1, 500, 10**8) > 1e-3
        with pytest.raises(ValueError):
            stats.significance_threshold(500, 10**8, evalue=0.0)

    def test_lenient_cutoff_clamps_to_zero(self):
        """SW scores are non-negative; a cutoff so lenient that the
        analytic threshold is negative must clamp to 0, not return a
        score no hit can have."""
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        t = stats.significance_threshold(50, 10**4, evalue=1e6)
        assert t == 0
        # Monotonic through the boundary: tightening the cutoff can
        # only raise the threshold.
        cutoffs = [1e6, 1e3, 1.0, 1e-3, 1e-6]
        thresholds = [
            stats.significance_threshold(50, 10**4, evalue=e)
            for e in cutoffs
        ]
        assert thresholds == sorted(thresholds)
        assert all(t >= 0 for t in thresholds)


class TestAnnotateHits:
    def test_homolog_is_significant_decoys_are_not(self, search_setup):
        query, db, result = search_setup
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        annotated = annotate_hits(result, stats, len(query), k=7)
        assert annotated[0].hit.id == "homolog"
        assert annotated[0].evalue < 1e-10
        # Decoys: E-values orders of magnitude worse than the homolog.
        assert all(a.evalue > 1e-4 for a in annotated[1:])

    def test_evalues_sorted_with_scores(self, search_setup):
        query, _, result = search_setup
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        annotated = annotate_hits(result, stats, len(query), k=7)
        evalues = [a.evalue for a in annotated]
        assert evalues == sorted(evalues)

    def test_max_evalue_filter(self, search_setup):
        query, _, result = search_setup
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        significant = annotate_hits(
            result, stats, len(query), k=7, max_evalue=1e-5
        )
        assert [a.hit.id for a in significant] == ["homolog"]

    def test_bit_scores_positive_for_real_hits(self, search_setup):
        query, _, result = search_setup
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        annotated = annotate_hits(result, stats, len(query), k=1)
        assert annotated[0].bit_score > 50

    def test_query_length_validation(self, search_setup):
        _, _, result = search_setup
        stats = ScoreStatistics(BLOSUM62, GapPenalty.cudasw_default())
        with pytest.raises(ValueError):
            annotate_hits(result, stats, 0)
