"""Smoke tests for the example scripts.

Only the fast examples run in the suite (the Swiss-Prot-scale ones are
exercised by `make examples`); what matters here is that the scripts stay
importable and their entry points execute against the public API.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts == [
        "database_search.py",
        "kernel_evolution.py",
        "multi_gpu_scaling.py",
        "quickstart.py",
        "significance_statistics.py",
        "swps3_comparison.py",
        "threshold_tuning.py",
    ]
    assert (EXAMPLES / "README.md").exists()


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "Smith-Waterman score" in out
    assert "top hits" in out
    assert "Tesla C1060" in out and "Tesla C2050" in out


def test_significance_statistics_runs():
    out = run_example("significance_statistics.py")
    assert "lambda" in out
    assert "significant" in out and "chance-level" in out


@pytest.mark.parametrize(
    "name,marker",
    [
        ("database_search.py", "intra-task share"),
        ("multi_gpu_scaling.py", "speedup"),
    ],
)
def test_swissprot_scale_examples_run(name, marker):
    out = run_example(name, timeout=300)
    assert marker in out
