"""Unit tests for substitution matrices and the NCBI parser."""

import numpy as np
import pytest

from repro.alphabet import (
    BLOSUM62,
    DNA,
    PROTEIN,
    AlphabetError,
    SubstitutionMatrix,
    dna_matrix,
    format_ncbi_matrix,
    identity_matrix,
    load_ncbi_matrix,
    parse_ncbi_matrix,
    random_matrix,
)


class TestBlosum62:
    """Spot-checks against the canonical NCBI BLOSUM62 values."""

    def test_symmetric(self):
        assert BLOSUM62.is_symmetric

    def test_known_values(self):
        assert BLOSUM62.score("A", "A") == 4
        assert BLOSUM62.score("W", "W") == 11
        assert BLOSUM62.score("C", "C") == 9
        assert BLOSUM62.score("A", "R") == -1
        assert BLOSUM62.score("W", "C") == -2
        assert BLOSUM62.score("I", "L") == 2
        assert BLOSUM62.score("D", "E") == 2
        assert BLOSUM62.score("*", "*") == 1
        assert BLOSUM62.score("A", "*") == -4

    def test_extremes(self):
        assert BLOSUM62.max_score == 11  # W-W
        assert BLOSUM62.min_score == -4

    def test_diagonal_positive_for_standard_residues(self):
        for sym in "ARNDCQEGHILKMFPSTWYV":
            assert BLOSUM62.score(sym, sym) > 0, sym

    def test_pair_scores_gather(self):
        q = PROTEIN.encode("AWC")
        d = PROTEIN.encode("WA")
        table = BLOSUM62.pair_scores(q, d)
        assert table.shape == (3, 2)
        assert table[0, 1] == 4  # A vs A
        assert table[1, 0] == 11  # W vs W

    def test_row(self):
        a = PROTEIN.code_of("A")
        assert BLOSUM62.row(a)[a] == 4

    def test_scores_read_only(self):
        with pytest.raises(ValueError):
            BLOSUM62.scores[0, 0] = 99


class TestConstruction:
    def test_shape_check(self):
        with pytest.raises(AlphabetError, match="shape"):
            SubstitutionMatrix("bad", DNA, np.zeros((3, 3), dtype=np.int32))

    def test_with_name(self):
        renamed = BLOSUM62.with_name("copy")
        assert renamed.name == "copy"
        assert np.array_equal(renamed.scores, BLOSUM62.scores)

    def test_identity_matrix(self):
        m = identity_matrix(DNA, match=3, mismatch=-1)
        assert m.score("A", "A") == 3
        assert m.score("A", "C") == -1

    def test_dna_matrix_defaults(self):
        m = dna_matrix()
        assert m.score("A", "A") == 2
        assert m.score("A", "G") == -3
        # N never rewards, even against itself.
        assert m.score("N", "N") == -3
        assert m.score("N", "A") == -3

    def test_dna_matrix_validation(self):
        with pytest.raises(ValueError):
            dna_matrix(match=0)
        with pytest.raises(ValueError):
            dna_matrix(mismatch=1)

    def test_random_matrix_symmetric_positive_diag(self):
        rng = np.random.default_rng(42)
        m = random_matrix(PROTEIN, rng)
        assert m.is_symmetric
        assert np.all(np.diagonal(m.scores) >= 1)

    def test_random_matrix_bounds_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_matrix(PROTEIN, rng, low=5, high=5)


class TestParser:
    def test_roundtrip_blosum62(self):
        text = format_ncbi_matrix(BLOSUM62)
        again = parse_ncbi_matrix(text, name="BLOSUM62", alphabet=PROTEIN)
        assert np.array_equal(again.scores, BLOSUM62.scores)

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "mat.txt"
        path.write_text(format_ncbi_matrix(BLOSUM62))
        loaded = load_ncbi_matrix(path, alphabet=PROTEIN)
        assert loaded.name == "mat"
        assert np.array_equal(loaded.scores, BLOSUM62.scores)

    def test_rows_any_order(self):
        # Shuffle data rows; parse must align by symbol, not position.
        text = format_ncbi_matrix(BLOSUM62)
        lines = text.splitlines()
        header, rows = lines[:2], lines[2:]
        shuffled = "\n".join(header + rows[::-1])
        again = parse_ncbi_matrix(shuffled, name="x", alphabet=PROTEIN)
        assert np.array_equal(again.scores, BLOSUM62.scores)

    def test_empty_raises(self):
        with pytest.raises(AlphabetError, match="no data"):
            parse_ncbi_matrix("# only comments\n", name="x")

    def test_missing_row_raises(self):
        text = format_ncbi_matrix(BLOSUM62)
        lines = [ln for ln in text.splitlines() if not ln.startswith("W")]
        with pytest.raises(AlphabetError, match="missing"):
            parse_ncbi_matrix("\n".join(lines), name="x", alphabet=PROTEIN)

    def test_unknown_symbol_raises(self):
        bad = "   A  J\nA  1  0\nJ  0  1\n"
        with pytest.raises(AlphabetError, match="not in alphabet"):
            parse_ncbi_matrix(bad, name="x", alphabet=PROTEIN)

    def test_ragged_row_raises(self):
        bad = "   A  C\nA  1  0  7\nC  0  1\n"
        with pytest.raises(AlphabetError, match="values"):
            parse_ncbi_matrix(bad, name="x", alphabet=DNA)

    def test_non_integer_raises(self):
        bad = "   A  C\nA  1  z\nC  0  1\n"
        with pytest.raises(AlphabetError, match="non-integer"):
            parse_ncbi_matrix(bad, name="x", alphabet=DNA)

    def test_duplicate_row_raises(self):
        bad = "   A  C\nA  1  0\nA  0  1\n"
        with pytest.raises(AlphabetError, match="duplicate"):
            parse_ncbi_matrix(bad, name="x", alphabet=DNA)

    def test_small_custom_alphabet(self):
        alpha = __import__("repro.alphabet", fromlist=["Alphabet"]).Alphabet(
            "toy", "AC"
        )
        text = "   A  C\nA  5 -2\nC -2  5\n"
        m = parse_ncbi_matrix(text, name="toy", alphabet=alpha)
        assert m.score("A", "C") == -2


class TestGapPenalty:
    def test_paper_convention(self):
        from repro.alphabet import GapPenalty

        gp = GapPenalty(rho=12, sigma=2)
        assert gp.gap_cost(0) == 0
        assert gp.gap_cost(1) == 12
        assert gp.gap_cost(3) == 16

    def test_open_extend_conversion(self):
        from repro.alphabet import GapPenalty

        gp = GapPenalty.from_open_extend(10, 2)
        assert gp.rho == 12 and gp.sigma == 2
        assert gp.open_extend == (10, 2)
        # gap of length k costs open + k*extend in that convention
        assert gp.gap_cost(4) == 10 + 4 * 2

    def test_cudasw_default(self):
        from repro.alphabet import GapPenalty

        assert GapPenalty.cudasw_default() == GapPenalty(12, 2)

    def test_validation(self):
        from repro.alphabet import GapPenalty

        with pytest.raises(ValueError):
            GapPenalty(rho=0, sigma=1)
        with pytest.raises(ValueError):
            GapPenalty(rho=5, sigma=0)
        with pytest.raises(ValueError):
            GapPenalty(rho=2, sigma=5)  # extension pricier than open
        with pytest.raises(ValueError):
            GapPenalty(rho=5, sigma=-1)

    def test_negative_gap_length(self):
        from repro.alphabet import GapPenalty

        with pytest.raises(ValueError):
            GapPenalty(5, 2).gap_cost(-1)
