"""Tests for the BLOSUM construction algorithm."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, PROTEIN
from repro.alphabet.blosum_builder import (
    build_blosum,
    cluster_sequences,
    pair_frequencies,
)


class TestClustering:
    def test_identical_sequences_cluster(self):
        block = np.array([[1, 2, 3], [1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        clusters = cluster_sequences(block, 0.9)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_low_threshold_merges_all(self):
        block = np.array([[1, 2, 3], [1, 2, 9], [1, 8, 9]], dtype=np.uint8)
        # 1/3 identity between rows 0 and 2; single linkage via row 1.
        clusters = cluster_sequences(block, 0.3)
        assert len(clusters) == 1

    def test_threshold_one_requires_identity(self):
        block = np.array([[1, 2], [1, 3]], dtype=np.uint8)
        assert len(cluster_sequences(block, 1.0)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_sequences(np.zeros((0, 3), dtype=np.uint8), 0.5)
        with pytest.raises(ValueError):
            cluster_sequences(np.zeros((2, 3), dtype=np.uint8), 0.0)


class TestPairFrequencies:
    def test_simple_column_counts(self):
        # One column, two distant sequences: one AB pair.
        a = PROTEIN.code_of("A")
        r = PROTEIN.code_of("R")
        block = np.array([[a], [r]], dtype=np.uint8)
        counts = pair_frequencies([block], PROTEIN, 0.99)
        assert counts[a, r] == pytest.approx(1.0)
        assert counts[r, a] == pytest.approx(1.0)

    def test_cluster_members_do_not_pair(self):
        a = PROTEIN.code_of("A")
        block = np.array([[a], [a]], dtype=np.uint8)  # identical -> 1 cluster
        counts = pair_frequencies([block], PROTEIN, 0.5)
        assert counts.sum() == 0.0

    def test_cluster_weighting(self):
        # Two identical sequences (one cluster, weight 1/2 each) plus one
        # distant sequence: each cross pair weighs 1/2.
        a, r, n = (PROTEIN.code_of(c) for c in "ARN")
        block = np.array([[a, a], [a, a], [r, n]], dtype=np.uint8)
        counts = pair_frequencies([block], PROTEIN, 0.9)
        assert counts[a, r] == pytest.approx(2 * 0.5)  # two members x cols? no:
        # column 0: pairs (seq0,a - seq2,r) w=0.5 and (seq1,a - seq2,r) w=0.5
        assert counts[a, r] == pytest.approx(1.0)
        assert counts[a, n] == pytest.approx(1.0)


class TestBuildBlosum:
    def sample_blocks_from_blosum62(self, rng, n_blocks=400, depth=6, width=40):
        """Blocks drawn from BLOSUM62's implied pair distribution: each
        column picks a residue pair (a, b) with probability proportional
        to p_a p_b exp(lambda s_ab) (lambda = ln2/2 for a half-bit matrix)
        and splits the block's rows between them; the two row groups are
        then distinct clusters at a high identity threshold, so each
        column contributes exactly one weighted (a, b) pair."""
        from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES

        p = SWISSPROT_AA_FREQUENCIES.copy()
        target = np.outer(p, p) * np.exp(
            0.3466 * BLOSUM62.scores.astype(float)
        )
        target /= target.sum()
        size = BLOSUM62.alphabet.size
        pairs = rng.choice(size * size, p=target.ravel(), size=(n_blocks, width))
        blocks = []
        half = depth // 2
        for bi in range(n_blocks):
            a, b = np.divmod(pairs[bi], size)
            block = np.empty((depth, width), dtype=np.uint8)
            block[:half, :] = a
            block[half:, :] = b
            blocks.append(block)
        return blocks

    def test_reconstructs_blosum62(self):
        """A matrix rebuilt from blocks sampled under BLOSUM62's target
        distribution must correlate strongly with BLOSUM62 over the 20
        standard residues."""
        rng = np.random.default_rng(0)
        blocks = self.sample_blocks_from_blosum62(rng)
        rebuilt = build_blosum(blocks, threshold=0.99, name="rebuilt")
        common = [PROTEIN.code_of(c) for c in "ARNDCQEGHILKMFPSTWYV"]
        ours = rebuilt.scores[np.ix_(common, common)].astype(float)
        ref = BLOSUM62.scores[np.ix_(common, common)].astype(float)
        corr = np.corrcoef(ours.ravel(), ref.ravel())[0, 1]
        assert corr > 0.9
        # Diagonal positive, like the original.
        assert np.all(np.diagonal(ours) > 0)

    def test_output_is_symmetric_integer_matrix(self):
        rng = np.random.default_rng(1)
        blocks = self.sample_blocks_from_blosum62(rng, n_blocks=10)
        m = build_blosum(blocks, threshold=0.9)
        assert m.is_symmetric
        assert m.scores.dtype == np.int32

    def test_unobserved_symbols_get_floor(self):
        a, r = PROTEIN.code_of("A"), PROTEIN.code_of("R")
        block = np.array([[a, a, r], [r, a, a]], dtype=np.uint8)
        m = build_blosum([block], threshold=0.99)
        w = PROTEIN.code_of("W")
        assert m.scores[w, w] == m.scores[np.ix_([a, r], [a, r])].min()

    def test_usable_by_aligners(self):
        """A derived matrix must plug straight into the SW substrate."""
        rng = np.random.default_rng(2)
        blocks = self.sample_blocks_from_blosum62(rng, n_blocks=20)
        m = build_blosum(blocks, threshold=0.99)
        from repro.alphabet import GapPenalty
        from repro.sequence import random_protein
        from repro.sw import sw_score_antidiagonal, sw_score_scalar

        q, d = random_protein(40, rng), random_protein(40, rng)
        gp = GapPenalty(12, 2)
        assert sw_score_antidiagonal(q, d, m, gp) == sw_score_scalar(q, d, m, gp)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_blosum([])
        a = PROTEIN.code_of("A")
        # Only one cluster -> no pairs.
        block = np.array([[a], [a]], dtype=np.uint8)
        with pytest.raises(ValueError, match="no residue pairs"):
            build_blosum([block], threshold=0.5)
