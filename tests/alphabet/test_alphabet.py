"""Unit tests for repro.alphabet.alphabet."""

import numpy as np
import pytest

from repro.alphabet import DNA, PROTEIN, Alphabet, AlphabetError


class TestConstruction:
    def test_protein_size(self):
        assert PROTEIN.size == 24
        assert len(PROTEIN) == 24

    def test_dna_size(self):
        assert DNA.size == 5

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError, match="duplicate"):
            Alphabet("bad", "AAB")

    def test_empty_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("empty", "")

    def test_wildcard_must_be_member(self):
        with pytest.raises(AlphabetError, match="wildcard"):
            Alphabet("bad", "ACGT", wildcard="N")

    def test_protein_wildcard(self):
        assert PROTEIN.wildcard == "X"
        assert PROTEIN.wildcard_code == PROTEIN.code_of("X")

    def test_no_wildcard_code_is_none(self):
        alpha = Alphabet("plain", "AB")
        assert alpha.wildcard_code is None


class TestCodes:
    def test_code_order_matches_symbol_order(self):
        for i, sym in enumerate(PROTEIN.symbols):
            assert PROTEIN.code_of(sym) == i
            assert PROTEIN.symbol_of(i) == sym

    def test_case_insensitive(self):
        assert PROTEIN.code_of("a") == PROTEIN.code_of("A")

    def test_contains(self):
        assert "A" in PROTEIN
        assert "J" not in PROTEIN
        assert "AB" not in PROTEIN

    def test_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            PROTEIN.code_of("J")

    def test_multichar_raises(self):
        with pytest.raises(AlphabetError):
            PROTEIN.code_of("AB")

    def test_code_out_of_range(self):
        with pytest.raises(AlphabetError):
            PROTEIN.symbol_of(24)
        with pytest.raises(AlphabetError):
            PROTEIN.symbol_of(-1)


class TestEncodeDecode:
    def test_roundtrip(self):
        text = "MKVLAARNDWW"
        assert PROTEIN.decode(PROTEIN.encode(text)) == text

    def test_lowercase_encodes(self):
        assert np.array_equal(PROTEIN.encode("acd"), PROTEIN.encode("ACD"))

    def test_strict_rejects_unknown(self):
        with pytest.raises(AlphabetError, match="'J'"):
            PROTEIN.encode("AJC")

    def test_lenient_maps_to_wildcard(self):
        codes = PROTEIN.encode("AJC", strict=False)
        assert codes[1] == PROTEIN.wildcard_code

    def test_lenient_without_wildcard_raises(self):
        alpha = Alphabet("plain", "AB")
        with pytest.raises(AlphabetError, match="wildcard"):
            alpha.encode("AZB", strict=False)

    def test_empty_string(self):
        codes = PROTEIN.encode("")
        assert codes.shape == (0,)
        assert PROTEIN.decode(codes) == ""

    def test_decode_rejects_bad_code(self):
        with pytest.raises(AlphabetError):
            PROTEIN.decode(np.array([200], dtype=np.uint8))

    def test_encode_dtype(self):
        assert PROTEIN.encode("ACD").dtype == np.uint8


class TestRandomCodes:
    def test_uniform_draw_in_range(self):
        rng = np.random.default_rng(0)
        codes = DNA.random_codes(1000, rng)
        assert codes.dtype == np.uint8
        assert codes.min() >= 0 and codes.max() < DNA.size

    def test_frequencies_respected(self):
        rng = np.random.default_rng(1)
        freq = np.zeros(DNA.size)
        freq[DNA.code_of("A")] = 1.0
        codes = DNA.random_codes(50, rng, frequencies=freq)
        assert np.all(codes == DNA.code_of("A"))

    def test_frequencies_normalized(self):
        rng = np.random.default_rng(2)
        freq = np.full(DNA.size, 10.0)  # un-normalized on purpose
        codes = DNA.random_codes(200, rng, frequencies=freq)
        assert set(np.unique(codes)) <= set(range(DNA.size))

    def test_bad_frequency_shape(self):
        rng = np.random.default_rng(3)
        with pytest.raises(AlphabetError):
            DNA.random_codes(10, rng, frequencies=np.ones(3))

    def test_negative_frequencies(self):
        rng = np.random.default_rng(4)
        freq = np.ones(DNA.size)
        freq[0] = -1
        with pytest.raises(AlphabetError):
            DNA.random_codes(10, rng, frequencies=freq)

    def test_zero_length(self):
        rng = np.random.default_rng(5)
        assert DNA.random_codes(0, rng).shape == (0,)
