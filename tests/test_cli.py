"""Tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sequence import plant_motif, random_protein, write_fasta


@pytest.fixture(scope="module")
def fasta_files(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    rng = np.random.default_rng(0)
    query = random_protein(80, rng, id="Q1")
    host, _ = plant_motif(query, 300, rng, id="HIT1")
    db = [host] + [random_protein(200, rng, id=f"D{i}") for i in range(4)]
    paths = {
        "query": tmp / "query.fasta",
        "db": tmp / "db.fasta",
        "subject": tmp / "subject.fasta",
    }
    write_fasta([query], paths["query"])
    write_fasta(db, paths["db"])
    write_fasta([db[1]], paths["subject"])
    return {k: str(v) for k, v in paths.items()}


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestAlign:
    def test_local(self, fasta_files):
        code, text = run_cli(
            ["align", fasta_files["query"], fasta_files["query"]]
        )
        assert code == 0
        assert "identity=100.0%" in text
        assert "80M" in text

    def test_global_mode(self, fasta_files):
        code, text = run_cli(
            ["align", fasta_files["query"], fasta_files["subject"],
             "--mode", "global"]
        )
        assert code == 0
        assert "global alignment" in text

    def test_custom_gap_model(self, fasta_files):
        code, text = run_cli(
            ["align", fasta_files["query"], fasta_files["query"],
             "--gap-open", "5", "--gap-extend", "1"]
        )
        assert code == 0

    def test_custom_matrix_file(self, fasta_files, tmp_path):
        from repro.alphabet import BLOSUM62, format_ncbi_matrix

        path = tmp_path / "custom.txt"
        path.write_text(format_ncbi_matrix(BLOSUM62))
        code, text = run_cli(
            ["align", fasta_files["query"], fasta_files["query"],
             "--matrix", str(path)]
        )
        assert code == 0
        assert "identity=100.0%" in text


class TestSearch:
    def test_planted_hit_ranks_first(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"], "--top", "3"]
        )
        assert code == 0
        lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert lines[1].startswith("HIT1")
        assert "GCUPs" in text

    def test_evalue_filter(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--max-evalue", "1e-10"]
        )
        assert code == 0
        assert "HIT1" in text
        assert "D1" not in text

    def test_device_and_kernel_options(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--device", "C2050", "--kernel", "original"]
        )
        assert code == 0
        assert "Tesla C2050" in text

    def test_batched_engine_is_default_and_reports_packing(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"]]
        )
        assert code == 0
        assert "scored by batched engine" in text
        assert "padding efficiency" in text

    def test_engine_choices_agree(self, fasta_files):
        def hits(engine):
            code, text = run_cli(
                ["search", fasta_files["query"], fasta_files["db"],
                 "--engine", engine, "--top", "3"]
            )
            assert code == 0
            return [ln for ln in text.splitlines() if not ln.startswith("#")]

        assert hits("antidiagonal") == hits("batched")

    def test_explicit_non_batched_engine_has_no_packing_line(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--engine", "antidiagonal"]
        )
        assert code == 0
        assert "padding efficiency" not in text

    def test_workers_option(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--workers", "2"]
        )
        assert code == 0
        assert "scored by batched engine" in text

    def test_unknown_engine_rejected(self, fasta_files):
        with pytest.raises(SystemExit):
            run_cli(
                ["search", fasta_files["query"], fasta_files["db"],
                 "--engine", "warp"]
            )

    def test_engine_line_printed_for_every_engine(self, fasta_files):
        for engine in ("scalar", "antidiagonal", "batched"):
            code, text = run_cli(
                ["search", fasta_files["query"], fasta_files["db"],
                 "--engine", engine, "--top", "2"]
            )
            assert code == 0
            assert f"scored by {engine} engine" in text


class TestSearchFaultFlags:
    def test_fault_flags_accepted_and_results_unchanged(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--workers", "2", "--timeout", "30", "--retries", "1",
             "--deadline", "60"]
        )
        assert code == 0
        assert text.splitlines()[2].startswith("HIT1")

    def test_deadline_exceeded_exit_code_and_message(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--deadline", "1e-9"]
        )
        assert code == 3
        assert "deadline" in text
        assert "/5 sequences scored" in text

    def test_invalid_fault_flag_values_rejected(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--timeout", "-1"]
        )
        assert code == 2
        assert "error:" in text

    def test_fault_flags_with_non_batched_engine_rejected(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--engine", "scalar", "--retries", "3"]
        )
        assert code == 2
        assert "batched" in text


class TestSearchDurabilityFlags:
    def test_scores_out_writes_full_tsv(self, fasta_files, tmp_path):
        path = tmp_path / "scores.tsv"
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--scores-out", str(path)]
        )
        assert code == 0
        assert f"# scores written to {path}" in text
        lines = path.read_text().splitlines()
        assert lines[0] == "# query\tQ1"
        assert lines[1] == "# index\tid\tlength\tscore"
        assert len(lines) == 2 + 5  # one row per database sequence
        assert lines[2].split("\t")[1] == "HIT1"

    def test_group_size_flag_changes_packing(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--group-size", "2"]
        )
        assert code == 0
        assert "groups of <= 2 lanes" in text

    def test_checkpoint_flag_writes_journal(self, fasta_files, tmp_path):
        journal = tmp_path / "run.wal"
        code, _ = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--checkpoint", str(journal)]
        )
        assert code == 0
        assert journal.read_bytes().startswith(b"RPROWAL1")

    def test_resume_replays_journal(self, fasta_files, tmp_path):
        journal = tmp_path / "run.wal"
        argv = ["search", fasta_files["query"], fasta_files["db"],
                "--checkpoint", str(journal)]
        code, first = run_cli(argv)
        assert code == 0
        code, second = run_cli(argv + ["--resume"])
        assert code == 0
        hits = lambda text: [  # noqa: E731
            ln for ln in text.splitlines() if not ln.startswith("#")
        ]
        assert hits(second) == hits(first)

    def test_resume_without_checkpoint_rejected(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"], "--resume"]
        )
        assert code == 2
        assert "--checkpoint" in text

    def test_negative_memory_budget_rejected(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--memory-budget-mb", "-4"]
        )
        assert code == 2
        assert "error:" in text

    def test_deadline_with_checkpoint_prints_resume_hint(
        self, fasta_files, tmp_path
    ):
        journal = tmp_path / "dead.wal"
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--deadline", "1e-9", "--checkpoint", str(journal)]
        )
        assert code == 3
        assert f"checkpoint journal: {journal}" in text
        assert "--resume" in text


class TestSearchObservability:
    def test_profile_prints_span_tree_and_counters(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"], "--profile"]
        )
        assert code == 0
        assert "== span tree ==" in text
        assert "== counters ==" in text
        # The phases the issue demands visible in the rendered tree.
        for phase in ("pack", "sweep", "fan_out", "rank", "search"):
            assert phase in text
        assert "engine.pack.padded_cells" in text
        # The hit table still leads the output.
        assert text.index("HIT1") < text.index("== span tree ==")

    def test_metrics_out_writes_run_report_json(self, fasta_files, tmp_path):
        import json

        path = tmp_path / "run.json"
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--metrics-out", str(path)]
        )
        assert code == 0
        assert f"# metrics written to {path}" in text
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.run_report"
        assert doc["meta"]["query_id"] == "Q1"
        assert doc["meta"]["database_sequences"] == 5
        # Counter totals agree bit-exactly with the engine section.
        assert (
            doc["counters"]["engine.pack.padded_cells"]
            == doc["engine"]["padded_cells"]
        )
        assert (
            doc["counters"]["engine.pack.residues"]
            == doc["engine"]["residues"]
        )
        assert doc["model"]["query_length"] == 80
        paths = {s["name"] for s in doc["spans"]}
        assert "search" in paths and "rank" in paths

    def test_profile_with_non_batched_engine(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--engine", "antidiagonal", "--profile"]
        )
        assert code == 0
        assert "pair_loop" in text
        assert "engine.pairs_scored" in text

    def test_no_observability_output_by_default(self, fasta_files):
        code, text = run_cli(
            ["search", fasta_files["query"], fasta_files["db"]]
        )
        assert code == 0
        assert "span tree" not in text
        assert "metrics written" not in text


class TestPredict:
    def test_profile(self):
        code, text = run_cli(
            ["predict", "--profile", "swissprot", "--scale", "0.05",
             "--query-length", "567"]
        )
        assert code == 0
        assert "modeled GCUPs" in text
        assert "inter-task" in text

    def test_fasta_database(self, fasta_files):
        code, text = run_cli(["predict", "--database", fasta_files["db"]])
        assert code == 0
        assert "modeled GCUPs" in text

    def test_explain_breakdown(self):
        code, text = run_cli(
            ["predict", "--profile", "swissprot", "--scale", "0.05",
             "--explain"]
        )
        assert code == 0
        assert "inter-task kernel breakdown" in text
        assert "intra-task kernel breakdown" in text
        assert "bound by:" in text and "roofline" in text

    def test_auto_threshold_flag(self):
        code, text = run_cli(
            ["predict", "--profile", "tair", "--scale", "0.2",
             "--threshold", "auto", "--device", "C2050"]
        )
        assert code == 0
        assert "(auto-detected)" in text

    def test_bad_threshold_string(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            run_cli(["predict", "--profile", "tair", "--threshold", "soon"])

    def test_profile_aliases_cover_all_six(self):
        from repro.cli import _PROFILE_ALIASES
        from repro.sequence.synthetic import PAPER_DATABASES

        assert set(_PROFILE_ALIASES.values()) == {
            p.name for p in PAPER_DATABASES
        }


class TestExhibit:
    def test_figure2(self):
        code, text = run_cli(["exhibit", "figure2"])
        assert code == 0
        assert "inter_gcups" in text

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["exhibit", "nonsense"])


class TestDbStore:
    @pytest.fixture(scope="class")
    def store_path(self, fasta_files, tmp_path_factory):
        path = tmp_path_factory.mktemp("clidb") / "db.rdb"
        code, text = run_cli(
            ["db", "build", fasta_files["db"], str(path),
             "--comment", "cli test"]
        )
        assert code == 0, text
        return str(path)

    def test_build_prints_summary(self, fasta_files, tmp_path):
        code, text = run_cli(
            ["db", "build", fasta_files["db"], str(tmp_path / "b.rdb")]
        )
        assert code == 0
        assert "fingerprint:" in text
        assert "sequences:    5" in text

    def test_build_missing_fasta_is_usage_error(self, tmp_path):
        code, text = run_cli(
            ["db", "build", str(tmp_path / "no.fasta"),
             str(tmp_path / "x.rdb")]
        )
        assert code == 2
        assert "error:" in text

    def test_verify_deep(self, store_path):
        code, text = run_cli(["db", "verify", store_path, "--deep"])
        assert code == 0
        assert "passed deep validation" in text

    def test_info_reads_index(self, store_path):
        code, text = run_cli(["db", "info", store_path])
        assert code == 0
        assert "cli test" in text
        assert "lengths:" in text

    def test_search_with_store_matches_fasta(self, fasta_files, store_path):
        code, base = run_cli(
            ["search", fasta_files["query"], fasta_files["db"],
             "--top", "3"]
        )
        assert code == 0
        code, from_store = run_cli(
            ["search", fasta_files["query"], "--db", store_path,
             "--top", "3"]
        )
        assert code == 0
        strip = lambda t: [
            ln for ln in t.splitlines() if not ln.startswith("#")
        ]
        assert strip(from_store) == strip(base)

    def test_search_requires_some_database(self, fasta_files):
        code, text = run_cli(["search", fasta_files["query"]])
        assert code == 2
        assert "--db" in text

    def test_fallback_needs_fasta_positional(self, fasta_files, store_path):
        code, text = run_cli(
            ["search", fasta_files["query"], "--db", store_path,
             "--db-fallback"]
        )
        assert code == 2

    def test_corrupt_store_exits_4(self, fasta_files, store_path, tmp_path):
        data = open(store_path, "rb").read()
        bad = tmp_path / "bad.rdb"
        bad.write_bytes(data[: len(data) - 9])
        code, text = run_cli(
            ["search", fasta_files["query"], "--db", str(bad)]
        )
        assert code == 4
        assert "not a trustworthy database store" in text
        code, text = run_cli(["db", "verify", str(bad)])
        assert code == 4

    def test_fallback_degrades_to_fasta(
        self, fasta_files, store_path, tmp_path
    ):
        data = open(store_path, "rb").read()
        bad = tmp_path / "bad.rdb"
        bad.write_bytes(data[:64])
        with pytest.warns(UserWarning):
            code, text = run_cli(
                ["search", fasta_files["query"], fasta_files["db"],
                 "--db", str(bad), "--db-fallback", "--top", "3"]
            )
        assert code == 0
        assert "warning" in text
        lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert lines[1].startswith("HIT1")

    def test_profile_includes_db_open_span(self, fasta_files, store_path):
        code, text = run_cli(
            ["search", fasta_files["query"], "--db", store_path,
             "--profile", "--top", "3"]
        )
        assert code == 0
        assert "db_open" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert "align" in parser.format_help()

    def test_db_subcommands_registered(self):
        help_text = build_parser().format_help()
        assert "db" in help_text
        with pytest.raises(SystemExit):
            build_parser().parse_args(["db"])
