"""End-to-end DNA support: the stack is alphabet-generic.

The paper's workloads are protein, but "many different protein, RNA, or
DNA databases are routinely used" (Section IV-B) — the library must work
over any alphabet/matrix pair.  These tests run the whole pipeline
(reference aligners, kernels, application, statistics) on nucleotide
data.
"""

import numpy as np
import pytest

from repro.alphabet import DNA, GapPenalty, dna_matrix
from repro.app import CudaSW
from repro.cuda import TESLA_C1060
from repro.kernels import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    InterTaskKernel,
    OriginalIntraTaskKernel,
)
from repro.sequence import Database, Sequence
from repro.sw import sw_align, sw_score_antidiagonal, sw_score_scalar

MATRIX = dna_matrix(match=2, mismatch=-3)
GAPS = GapPenalty.from_open_extend(5, 2)


def random_dna(length, rng, id="d"):
    freq = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
    return Sequence.random(id, length, rng, DNA, frequencies=freq)


class TestDnaAlignment:
    def test_reference_agreement(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            q = random_dna(int(rng.integers(1, 120)), rng)
            d = random_dna(int(rng.integers(1, 120)), rng)
            assert sw_score_antidiagonal(q, d, MATRIX, GAPS) == sw_score_scalar(
                q, d, MATRIX, GAPS
            )

    def test_kernels_exact_on_dna(self):
        rng = np.random.default_rng(1)
        q = random_dna(90, rng)
        d = random_dna(140, rng)
        ref = sw_score_scalar(q, d, MATRIX, GAPS)
        for kernel in (
            InterTaskKernel(),
            OriginalIntraTaskKernel(threads_per_block=32),
            ImprovedIntraTaskKernel(ImprovedKernelConfig(threads_per_block=32)),
        ):
            assert kernel.run_pair(q.codes, d.codes, MATRIX, GAPS).score == ref

    def test_perfect_repeat_alignment(self):
        q = Sequence.from_text("q", "ACGTACGTACGT", DNA)
        aln = sw_align(q, q, MATRIX, GAPS)
        assert aln.score == 2 * len(q)
        assert aln.identity() == 1.0


class TestDnaSearch:
    @pytest.fixture(scope="class")
    def dna_db(self):
        rng = np.random.default_rng(2)
        gene = random_dna(200, rng, id="gene")
        # A subject containing the gene with flanking sequence.
        carrier = Sequence(
            "carrier",
            np.concatenate(
                [random_dna(150, rng).codes, gene.codes,
                 random_dna(150, rng).codes]
            ),
            DNA,
        )
        decoys = [random_dna(400, rng, id=f"bg{i}") for i in range(5)]
        return gene, Database.from_sequences([carrier, *decoys])

    def test_search_finds_gene(self, dna_db):
        gene, db = dna_db
        app = CudaSW(TESLA_C1060, matrix=MATRIX, gaps=GAPS, threshold=3072)
        result, report = app.search(gene, db)
        assert result.top(1)[0].id == "carrier"
        assert result.top(1)[0].score == 2 * len(gene)  # perfect match
        assert report.gcups > 0

    def test_alphabet_mismatch_rejected(self, dna_db):
        gene, db = dna_db
        from repro.sequence import random_protein

        rng = np.random.default_rng(3)
        app = CudaSW(TESLA_C1060, matrix=MATRIX, gaps=GAPS)
        with pytest.raises(ValueError, match="alphabet"):
            app.search(random_protein(30, rng), db)

    def test_dna_statistics(self, dna_db):
        from repro.stats import ScoreStatistics, annotate_hits

        gene, db = dna_db
        freq = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
        stats = ScoreStatistics(MATRIX, GAPS, frequencies=freq)
        app = CudaSW(TESLA_C1060, matrix=MATRIX, gaps=GAPS)
        result, _ = app.search(gene, db)
        hits = annotate_hits(result, stats, len(gene), k=3)
        assert hits[0].hit.id == "carrier"
        assert hits[0].evalue < 1e-20
        assert hits[1].evalue > 1e-3  # background sequences insignificant
