"""Hypothesis property tests for Database preprocessing operations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import Database

lengths_arrays = st.lists(
    st.integers(min_value=1, max_value=5000), min_size=1, max_size=200
).map(lambda xs: np.array(xs, dtype=np.int64))


@settings(max_examples=40, deadline=None)
@given(lengths=lengths_arrays)
def test_sort_preserves_multiset(lengths):
    db = Database.from_lengths(lengths)
    s = db.sorted_by_length()
    assert sorted(lengths.tolist()) == s.lengths.tolist()
    assert s.total_residues == db.total_residues


@settings(max_examples=40, deadline=None)
@given(lengths=lengths_arrays, threshold=st.integers(min_value=1, max_value=6000))
def test_split_partitions_exactly(lengths, threshold):
    db = Database.from_lengths(lengths)
    below, above = db.split_by_threshold(threshold)
    n_below = 0 if below is None else len(below)
    n_above = 0 if above is None else len(above)
    assert n_below + n_above == len(db)
    if below is not None:
        assert int(below.lengths.max()) < threshold
    if above is not None:
        assert int(above.lengths.min()) >= threshold
    # Residues conserved.
    total = (below.total_residues if below else 0) + (
        above.total_residues if above else 0
    )
    assert total == db.total_residues


@settings(max_examples=40, deadline=None)
@given(lengths=lengths_arrays, group=st.integers(min_value=1, max_value=64))
def test_groups_cover_without_overlap(lengths, group):
    db = Database.from_lengths(lengths).sorted_by_length()
    groups = db.partition_groups(group)
    seen = np.concatenate([g.indices for g in groups])
    assert np.array_equal(np.sort(seen), np.arange(len(db)))
    assert sum(g.total_residues for g in groups) == db.total_residues
    # All groups full except possibly the last.
    assert all(g.size == group for g in groups[:-1])


@settings(max_examples=40, deadline=None)
@given(lengths=lengths_arrays, group=st.integers(min_value=1, max_value=64))
def test_sorted_group_efficiency_at_least_unsorted(lengths, group):
    """Sorting never worsens aggregate load balance when groups are full.

    The guarantee needs every group at its full size: the k-th largest
    chunk maximum of the sorted order meets the order-statistic lower
    bound, so sorting minimizes padded cells over all permutations.  A
    partial last group voids it — [2, 2, 1] at group=2 packs perfectly
    unsorted ([2,2] + [1]) but pads sorted ([1,2] + [2]) — so trim to a
    multiple of the group size.
    """
    group = 1 + (group - 1) % lengths.size  # keep group <= database size
    lengths = lengths[: (lengths.size // group) * group]

    def efficiency(db):
        groups = db.partition_groups(group)
        useful = sum(g.total_residues for g in groups)
        padded = sum(g.size * g.max_length for g in groups)
        return useful / padded

    db = Database.from_lengths(lengths)
    assert efficiency(db.sorted_by_length()) >= efficiency(db) - 1e-12


@settings(max_examples=30, deadline=None)
@given(lengths=lengths_arrays, frac_seed=st.integers(0, 2**31))
def test_select_roundtrip(lengths, frac_seed):
    rng = np.random.default_rng(frac_seed)
    db = Database.from_lengths(lengths)
    idx = rng.permutation(len(db))
    sub = db.select(idx)
    assert np.array_equal(sub.lengths, db.lengths[idx])


@settings(max_examples=30, deadline=None)
@given(lengths=lengths_arrays, threshold=st.integers(min_value=1, max_value=6000))
def test_fraction_over_consistency(lengths, threshold):
    db = Database.from_lengths(lengths)
    frac = db.fraction_over(threshold)
    assert frac == np.mean(lengths >= threshold)
