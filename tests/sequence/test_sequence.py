"""Unit tests for Sequence and FASTA I/O."""

import io

import numpy as np
import pytest

from repro.alphabet import DNA
from repro.sequence import Sequence, read_fasta, read_fasta_file, write_fasta


class TestSequence:
    def test_from_text_roundtrip(self):
        s = Sequence.from_text("q1", "MKVLAW")
        assert s.text == "MKVLAW"
        assert len(s) == 6
        assert str(s) == "MKVLAW"

    def test_codes_read_only(self):
        s = Sequence.from_text("q1", "MKVL")
        with pytest.raises(ValueError):
            s.codes[0] = 3

    def test_code_range_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            Sequence("bad", np.array([200], dtype=np.uint8), DNA)

    def test_ndim_validated(self):
        with pytest.raises(ValueError, match="1-D"):
            Sequence("bad", np.zeros((2, 2), dtype=np.uint8))

    def test_random_length_and_alphabet(self):
        rng = np.random.default_rng(0)
        s = Sequence.random("r", 100, rng, DNA)
        assert len(s) == 100
        assert set(s.text) <= set(DNA.symbols)

    def test_slice(self):
        s = Sequence.from_text("q", "MKVLAW")
        sub = s.slice(1, 4)
        assert sub.text == "KVL"
        assert "1:4" in sub.id

    def test_reversed(self):
        s = Sequence.from_text("q", "MKV")
        assert s.reversed().text == "VKM"
        assert s.reversed().reversed().text == "MKV"

    def test_empty_sequence_allowed(self):
        s = Sequence.from_text("e", "")
        assert len(s) == 0


FASTA = """\
>sp|P1|FIRST first protein
MKVLAW
QQ
>sp|P2|SECOND
ACDEF

>third
ghikl
"""


class TestFasta:
    def test_read_from_string(self):
        records = list(read_fasta(FASTA))
        assert [r.id for r in records] == ["sp|P1|FIRST", "sp|P2|SECOND", "third"]
        assert records[0].description == "first protein"
        assert records[0].text == "MKVLAWQQ"  # multi-line body joined
        assert records[1].description == ""
        assert records[2].text == "GHIKL"  # lower-case input upper-cased

    def test_read_from_handle(self):
        records = list(read_fasta(io.StringIO(FASTA)))
        assert len(records) == 3

    def test_missing_header_raises(self):
        with pytest.raises(ValueError, match="header"):
            list(read_fasta("MKVLAW\n"))

    def test_lenient_by_default(self):
        # 'J' is not a protein symbol; lenient read maps it to X.
        records = list(read_fasta(">q\nMJK\n"))
        assert records[0].text == "MXK"

    def test_strict_read_raises(self):
        with pytest.raises(Exception):
            list(read_fasta(">q\nMJK\n", strict=True))

    def test_roundtrip_via_file(self, tmp_path):
        rng = np.random.default_rng(1)
        seqs = [Sequence.random(f"s{i}", 30 + 17 * i, rng) for i in range(5)]
        path = tmp_path / "db.fasta"
        write_fasta(seqs, path)
        back = read_fasta_file(path)
        assert [s.id for s in back] == [s.id for s in seqs]
        for a, b in zip(seqs, back):
            assert a.text == b.text

    def test_write_wraps_lines(self):
        s = Sequence.from_text("q", "A" * 130)
        buf = io.StringIO()
        write_fasta([s], buf, width=60)
        lines = buf.getvalue().splitlines()
        assert lines[0] == ">q"
        assert [len(x) for x in lines[1:]] == [60, 60, 10]

    def test_write_includes_description(self):
        s = Sequence.from_text("q", "ACD", description="hello world")
        buf = io.StringIO()
        write_fasta([s], buf)
        assert buf.getvalue().startswith(">q hello world\n")

    def test_bad_width(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), width=0)
