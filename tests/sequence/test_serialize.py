"""Tests for database serialization."""

import numpy as np
import pytest

from repro.alphabet import DNA
from repro.sequence import Database, Sequence, SWISSPROT_PROFILE
from repro.sequence.serialize import load_database, save_database


class TestRoundTrip:
    def test_materialized_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        seqs = [Sequence.random(f"s{i}", 20 + 7 * i, rng) for i in range(5)]
        db = Database.from_sequences(seqs, name="round")
        path = tmp_path / "db.npz"
        save_database(db, path)
        back = load_database(path)
        assert back.name == "round"
        assert back.has_residues
        assert np.array_equal(back.lengths, db.lengths)
        for i in range(len(db)):
            assert back[i].text == db[i].text
            assert back.id_of(i) == db.id_of(i)

    def test_lengths_only_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        db = SWISSPROT_PROFILE.build(rng, scale=0.01)
        path = tmp_path / "lens.npz"
        save_database(db, path)
        back = load_database(path)
        assert not back.has_residues
        assert np.array_equal(back.lengths, db.lengths)
        assert back.alphabet.name == "protein"

    def test_dna_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        seqs = [Sequence.random(f"g{i}", 30, rng, DNA) for i in range(3)]
        db = Database.from_sequences(seqs)
        path = tmp_path / "dna.npz"
        save_database(db, path)
        back = load_database(path)
        assert back.alphabet is DNA
        assert back[1].text == db[1].text

    def test_loaded_database_searches_identically(self, tmp_path):
        from repro.app import CudaSW
        from repro.cuda import TESLA_C1060
        from repro.sequence import random_protein

        rng = np.random.default_rng(3)
        seqs = [Sequence.random(f"s{i}", 60, rng) for i in range(4)]
        db = Database.from_sequences(seqs)
        path = tmp_path / "db.npz"
        save_database(db, path)
        back = load_database(path)
        q = random_protein(40, rng)
        app = CudaSW(TESLA_C1060)
        r1, _ = app.search(q, db)
        r2, _ = app.search(q, back)
        assert np.array_equal(r1.scores, r2.scores)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.array([99]),
            name=np.array(["x"]),
            alphabet=np.array(["protein"]),
            lengths=np.array([5]),
            has_residues=np.array([False]),
        )
        with pytest.raises(ValueError, match="version"):
            load_database(path)

    def test_unknown_alphabet(self, tmp_path):
        path = tmp_path / "bad2.npz"
        np.savez_compressed(
            path,
            version=np.array([1]),
            name=np.array(["x"]),
            alphabet=np.array(["klingon"]),
            lengths=np.array([5]),
            has_residues=np.array([False]),
        )
        with pytest.raises(ValueError, match="alphabet"):
            load_database(path)
