"""Tests for synthetic database generation and the paper database profiles."""

import math

import numpy as np
import pytest

from repro.sequence import (
    PAPER_DATABASES,
    SWISSPROT_PROFILE,
    DatabaseProfile,
    fit_lognormal_sigma,
    lognormal_database,
    lognormal_lengths,
    random_protein,
)
from repro.sequence.synthetic import CUDASW_QUERY_LENGTHS


class TestLognormalLengths:
    def test_mean_std_match(self):
        rng = np.random.default_rng(0)
        lens = lognormal_lengths(200_000, mean=1000.0, std=500.0, rng=rng)
        assert lens.mean() == pytest.approx(1000.0, rel=0.02)
        assert lens.std() == pytest.approx(500.0, rel=0.05)

    def test_min_length_floor(self):
        rng = np.random.default_rng(1)
        lens = lognormal_lengths(10_000, mean=15.0, std=40.0, rng=rng)
        assert lens.min() >= 10

    def test_stratified_is_deterministic_distribution(self):
        rng1 = np.random.default_rng(2)
        rng2 = np.random.default_rng(99)
        a = np.sort(lognormal_lengths(1000, 500.0, 300.0, rng1, stratified=True))
        b = np.sort(lognormal_lengths(1000, 500.0, 300.0, rng2, stratified=True))
        assert np.array_equal(a, b)  # same quantiles regardless of rng

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            lognormal_lengths(0, 100.0, 10.0, rng)
        with pytest.raises(ValueError):
            lognormal_lengths(10, -1.0, 10.0, rng)
        with pytest.raises(ValueError):
            lognormal_lengths(10, 100.0, 0.0, rng)


class TestLognormalDatabase:
    def test_materialized(self):
        rng = np.random.default_rng(3)
        db = lognormal_database(50, 200.0, 100.0, rng)
        assert db.has_residues
        assert len(db) == 50

    def test_lengths_only(self):
        rng = np.random.default_rng(4)
        db = lognormal_database(50, 200.0, 100.0, rng, materialize=False)
        assert not db.has_residues


class TestFitLognormalSigma:
    def test_tail_constraint_satisfied(self):
        sigma = fit_lognormal_sigma(270.0, 3072, 0.0012)
        # P(L >= 3072) for lognormal(ln 270, sigma) must equal 0.0012.
        from scipy import stats

        z = (math.log(3072) - math.log(270)) / sigma
        assert stats.norm.sf(z) == pytest.approx(0.0012, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_lognormal_sigma(-1.0, 3072, 0.01)
        with pytest.raises(ValueError):
            fit_lognormal_sigma(270.0, 100, 0.01)  # threshold below median
        with pytest.raises(ValueError):
            fit_lognormal_sigma(270.0, 3072, 0.7)


class TestDatabaseProfiles:
    def test_paper_profiles_cover_table2(self):
        names = [p.name for p in PAPER_DATABASES]
        assert len(PAPER_DATABASES) == 6
        assert any("Swiss-Prot" in n for n in names)
        assert any("TAIR" in n for n in names)

    def test_swissprot_tail_fraction(self):
        # The paper: 0.12% of Swiss-Prot sequences over threshold 3072.
        assert SWISSPROT_PROFILE.frac_over_threshold == 0.0012
        assert SWISSPROT_PROFILE.expected_fraction_over(3072) == pytest.approx(
            0.0012, rel=1e-9
        )

    @pytest.mark.parametrize("profile", PAPER_DATABASES, ids=lambda p: p.name)
    def test_stratified_sampling_hits_tail(self, profile):
        rng = np.random.default_rng(5)
        lens = profile.sample_lengths(rng, scale=0.5)
        got = np.count_nonzero(lens >= 3072) / lens.size
        # Stratified sampling pins the empirical tail to the target within
        # discretization error of one sequence.
        assert got == pytest.approx(profile.frac_over_threshold, abs=2 / lens.size)

    def test_expected_fraction_monotone_in_threshold(self):
        p = SWISSPROT_PROFILE
        fracs = [p.expected_fraction_over(t) for t in (500, 1500, 3072, 10_000)]
        assert fracs == sorted(fracs, reverse=True)

    def test_build_scaled(self):
        rng = np.random.default_rng(6)
        db = SWISSPROT_PROFILE.build(rng, scale=0.001)
        assert len(db) == round(516_081 * 0.001)
        assert not db.has_residues

    def test_build_materialized(self):
        rng = np.random.default_rng(7)
        db = PAPER_DATABASES[0].build(rng, scale=0.002, materialize=True)
        assert db.has_residues

    def test_mean_length_formula(self):
        p = SWISSPROT_PROFILE
        assert p.mean_length == pytest.approx(
            math.exp(p.mu + p.sigma**2 / 2), rel=1e-12
        )
        assert p.mean_length > p.median_length  # log-normal is right-skewed

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            DatabaseProfile("bad", 0, 300.0, 0.01)
        with pytest.raises(ValueError):
            DatabaseProfile("bad", 10, 5000.0, 0.01)  # median above threshold

    def test_scale_validation(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            SWISSPROT_PROFILE.sample_lengths(rng, scale=0.0)


class TestRandomProtein:
    def test_length_and_id(self):
        rng = np.random.default_rng(9)
        q = random_protein(567, rng, id="q567")
        assert len(q) == 567
        assert q.id == "q567"

    def test_residues_follow_background(self):
        rng = np.random.default_rng(10)
        q = random_protein(200_000, rng)
        text = q.text
        # Leucine is the most common residue in Swiss-Prot (~9.7%).
        assert 0.08 < text.count("L") / len(text) < 0.11
        # Ambiguity codes never occur.
        assert text.count("X") == 0 and text.count("*") == 0


def test_query_ladder_matches_paper_range():
    assert CUDASW_QUERY_LENGTHS[0] == 144
    assert CUDASW_QUERY_LENGTHS[-1] == 5478
    assert list(CUDASW_QUERY_LENGTHS) == sorted(CUDASW_QUERY_LENGTHS)
