"""Real-world FASTA hardening: non-ASCII headers and gzip streams."""

import gzip

import pytest

from repro.sequence import read_fasta_file, write_fasta
from repro.sequence.sequence import Sequence


class TestLenientHeaders:
    def test_non_ascii_header_decodes_latin1_with_warning(self, tmp_path):
        path = tmp_path / "curated.fasta"
        path.write_bytes(
            b">sp|P1|caf\xe9 organism=\xe9toile\nACDEF\n>plain ok\nGHIKL\n"
        )
        with pytest.warns(UserWarning, match="sp\\|P1\\|caf"):
            records = read_fasta_file(path)
        assert [r.id for r in records] == ["sp|P1|café", "plain"]
        assert [r.text for r in records] == ["ACDEF", "GHIKL"]

    def test_warning_names_the_offending_record_once(self, tmp_path):
        path = tmp_path / "multi.fasta"
        # Two bad lines in ONE record (header + description overflow
        # onto a continuation is impossible in FASTA, so use two bad
        # records) -> one warning each, naming each record.
        path.write_bytes(b">a\xff first\nACD\n>b\xfe second\nEFG\n")
        with pytest.warns(UserWarning) as caught:
            records = read_fasta_file(path)
        assert len(records) == 2
        names = sorted(str(w.message) for w in caught
                       if "non-ASCII" in str(w.message))
        assert len(names) == 2
        assert "'aÿ'" in names[0] and "'bþ'" in names[1]

    def test_ascii_file_warns_nothing(self, tmp_path, recwarn):
        path = tmp_path / "clean.fasta"
        write_fasta([Sequence.from_text("q", "ACDEFG")], path)
        records = read_fasta_file(path)
        assert records[0].text == "ACDEFG"
        assert not [w for w in recwarn if "non-ASCII" in str(w.message)]


class TestGzipSupport:
    def test_gz_file_streams_transparently(self, tmp_path):
        path = tmp_path / "db.fasta.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(">a desc one\nACDE\nFGHI\n>b\nKLMN\n")
        records = read_fasta_file(path)
        assert [(r.id, r.text) for r in records] == [
            ("a", "ACDEFGHI"), ("b", "KLMN"),
        ]
        assert records[0].description == "desc one"

    def test_gzip_detected_by_magic_not_extension(self, tmp_path):
        path = tmp_path / "renamed.fasta"  # compressed, misleading name
        with gzip.open(path, "wt") as fh:
            fh.write(">x\nMNPQ\n")
        records = read_fasta_file(path)
        assert records[0].id == "x" and records[0].text == "MNPQ"

    def test_gzipped_non_ascii_header_still_warns(self, tmp_path):
        path = tmp_path / "both.fasta.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b">caf\xe9\nACDE\n")
        with pytest.warns(UserWarning, match="non-ASCII"):
            records = read_fasta_file(path)
        assert records[0].id == "café"

    def test_roundtrip_through_gzip_matches_plain(self, tmp_path):
        seqs = [Sequence.from_text(f"s{i}", "ACDEFGHIKLMNPQ"[: 5 + i])
                for i in range(4)]
        plain = tmp_path / "plain.fasta"
        write_fasta(seqs, plain)
        gz = tmp_path / "same.fasta.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert [(r.id, r.text) for r in read_fasta_file(gz)] == [
            (r.id, r.text) for r in read_fasta_file(plain)
        ]
