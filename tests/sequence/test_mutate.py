"""Tests for the sequence-evolution utilities."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.sequence import (
    evolve,
    indel_mutate,
    plant_motif,
    point_mutate,
    random_protein,
)
from repro.sw import smith_waterman

GP = GapPenalty.cudasw_default()


class TestPointMutate:
    def test_identity_tracks_rate(self):
        rng = np.random.default_rng(0)
        seq = random_protein(2000, rng, id="s")
        mutated = point_mutate(seq, 0.2, rng)
        identity = np.mean(seq.codes == mutated.codes)
        # Replacements may coincide with the original (~5% background).
        assert 0.78 < identity < 0.88
        assert len(mutated) == len(seq)

    def test_rate_zero_is_identity(self):
        rng = np.random.default_rng(1)
        seq = random_protein(50, rng)
        assert np.array_equal(point_mutate(seq, 0.0, rng).codes, seq.codes)

    def test_rate_validation(self):
        rng = np.random.default_rng(2)
        seq = random_protein(10, rng)
        with pytest.raises(ValueError):
            point_mutate(seq, 1.5, rng)

    def test_homolog_still_found_by_sw(self):
        rng = np.random.default_rng(3)
        seq = random_protein(120, rng)
        mutated = point_mutate(seq, 0.25, rng)
        related = smith_waterman(seq, mutated, BLOSUM62, GP)
        unrelated = smith_waterman(seq, random_protein(120, rng), BLOSUM62, GP)
        assert related > 3 * unrelated


class TestIndelMutate:
    def test_length_changes_modestly(self):
        rng = np.random.default_rng(4)
        seq = random_protein(1000, rng)
        mutated = indel_mutate(seq, 0.02, rng)
        assert 0.85 * len(seq) < len(mutated) < 1.15 * len(seq)

    def test_rate_zero_identity(self):
        rng = np.random.default_rng(5)
        seq = random_protein(100, rng)
        assert np.array_equal(indel_mutate(seq, 0.0, rng).codes, seq.codes)

    def test_validation(self):
        rng = np.random.default_rng(6)
        seq = random_protein(10, rng)
        with pytest.raises(ValueError):
            indel_mutate(seq, -0.1, rng)
        with pytest.raises(ValueError):
            indel_mutate(seq, 0.1, rng, mean_length=0.5)

    def test_never_empty(self):
        rng = np.random.default_rng(7)
        seq = random_protein(2, rng)
        for _ in range(20):
            assert len(indel_mutate(seq, 0.9, rng)) >= 1


class TestEvolveAndPlant:
    def test_evolved_copy_is_strong_hit(self):
        rng = np.random.default_rng(8)
        seq = random_protein(200, rng)
        copy = evolve(seq, rng, substitution_rate=0.15, indel_rate=0.02)
        assert smith_waterman(seq, copy, BLOSUM62, GP) > 300

    def test_plant_motif_offsets(self):
        rng = np.random.default_rng(9)
        motif = random_protein(40, rng, id="motif")
        host, start = plant_motif(motif, 200, rng)
        assert len(host) == 200
        assert np.array_equal(host.codes[start : start + 40], motif.codes)

    def test_plant_motif_exact_fit(self):
        rng = np.random.default_rng(10)
        motif = random_protein(30, rng)
        host, start = plant_motif(motif, 30, rng)
        assert start == 0
        assert np.array_equal(host.codes, motif.codes)

    def test_plant_validation(self):
        rng = np.random.default_rng(11)
        motif = random_protein(30, rng)
        with pytest.raises(ValueError):
            plant_motif(motif, 20, rng)

    def test_planted_motif_found_by_alignment(self):
        rng = np.random.default_rng(12)
        motif = random_protein(50, rng, id="motif")
        host, start = plant_motif(motif, 300, rng)
        from repro.sw import sw_align

        aln = sw_align(motif, host, BLOSUM62, GP)
        assert aln.d_start == start
        assert aln.d_end == start + 50
