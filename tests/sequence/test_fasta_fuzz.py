"""Property/fuzz tests for the FASTA reader and writer."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import PROTEIN
from repro.sequence import Sequence, read_fasta, write_fasta

protein_text = st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX", min_size=1,
                       max_size=200)
seq_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.|-",
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(
    records=st.lists(st.tuples(seq_ids, protein_text), min_size=1, max_size=8),
    width=st.integers(min_value=1, max_value=120),
)
def test_roundtrip_arbitrary_records(records, width):
    """write -> read is the identity for any id/sequence/wrap width."""
    seqs = [Sequence.from_text(i, t) for i, t in records]
    buf = io.StringIO()
    write_fasta(seqs, buf, width=width)
    back = list(read_fasta(buf.getvalue()))
    assert len(back) == len(seqs)
    for a, b in zip(seqs, back):
        assert a.id == b.id
        assert a.text == b.text


@settings(max_examples=40, deadline=None)
@given(text=protein_text, noise=st.sampled_from(["", "\n", "\n\n", "  \n"]))
def test_blank_line_noise_tolerated(text, noise):
    fasta = f">id1{noise}\n{text[:50]}\n{noise}{text[50:]}\n{noise}"
    records = list(read_fasta(fasta))
    assert len(records) == 1
    assert records[0].text == text.upper()


@settings(max_examples=30, deadline=None)
@given(
    desc=st.text(
        alphabet="abcdefghij XYZ0123456789[]()=,;:", min_size=0, max_size=60
    ),
    text=protein_text,
)
def test_description_preserved(desc, text):
    desc = desc.strip()
    header = f">acc {desc}" if desc else ">acc"
    records = list(read_fasta(f"{header}\n{text}\n"))
    assert records[0].id == "acc"
    # Internal whitespace runs normalize through split/join; compare that way.
    assert records[0].description.split() == desc.split()


@settings(max_examples=30, deadline=None)
@given(junk=st.text(alphabet="JOU!@#$%", min_size=1, max_size=20))
def test_lenient_mode_never_crashes_on_junk_residues(junk):
    records = list(read_fasta(f">x\n{junk}\n"))
    assert len(records) == 1
    # Everything unknown became the wildcard.
    assert set(records[0].text) <= set(PROTEIN.symbols)
