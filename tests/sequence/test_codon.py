"""Tests for translation and the six-frame translated search."""

import numpy as np
import pytest

from repro.alphabet import DNA, PROTEIN
from repro.sequence import Database, Sequence, random_protein
from repro.sequence.codon import (
    GENETIC_CODE,
    FrameHit,
    reverse_complement,
    six_frame_translations,
    translate,
    translated_search,
)

#: Reverse-translation table (one representative codon per residue).
_CODON_OF = {}
for codon, aa in GENETIC_CODE.items():
    _CODON_OF.setdefault(aa, codon)


def encode_protein_as_dna(protein_text: str, id: str = "gene") -> Sequence:
    dna = "".join(_CODON_OF[aa] for aa in protein_text)
    return Sequence.from_text(id, dna, DNA)


class TestGeneticCode:
    def test_table_complete(self):
        assert len(GENETIC_CODE) == 64
        assert set(GENETIC_CODE.values()) <= set(PROTEIN.symbols)

    def test_canonical_codons(self):
        assert GENETIC_CODE["ATG"] == "M"  # start
        assert GENETIC_CODE["TGG"] == "W"
        assert GENETIC_CODE["TAA"] == "*"
        assert GENETIC_CODE["TAG"] == "*"
        assert GENETIC_CODE["TGA"] == "*"
        assert GENETIC_CODE["AAA"] == "K"
        assert GENETIC_CODE["GGC"] == "G"

    def test_degeneracy(self):
        # Leucine has six codons.
        assert sum(1 for aa in GENETIC_CODE.values() if aa == "L") == 6


class TestReverseComplement:
    def test_basic(self):
        s = Sequence.from_text("x", "ACGTN", DNA)
        assert reverse_complement(s).text == "NACGT"

    def test_involution(self):
        rng = np.random.default_rng(0)
        s = Sequence.random("x", 30, rng, DNA)
        assert reverse_complement(reverse_complement(s)).text == s.text

    def test_protein_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            reverse_complement(random_protein(10, rng))


class TestTranslate:
    def test_known_translation(self):
        s = Sequence.from_text("x", "ATGAAAGGC", DNA)  # M K G
        assert translate(s).text == "MKG"

    def test_frames_shift(self):
        s = Sequence.from_text("x", "AATGAAAGGC", DNA)
        assert translate(s, 1).text == "MKG"

    def test_partial_codon_dropped(self):
        s = Sequence.from_text("x", "ATGAA", DNA)
        assert translate(s).text == "M"

    def test_n_translates_to_x(self):
        s = Sequence.from_text("x", "ATNAAA", DNA)
        assert translate(s).text == "XK"

    def test_frame_validation(self):
        s = Sequence.from_text("x", "ATGATG", DNA)
        with pytest.raises(ValueError):
            translate(s, 3)

    def test_roundtrip_protein(self):
        rng = np.random.default_rng(2)
        protein = random_protein(60, rng).text.replace("*", "A")
        dna = encode_protein_as_dna(protein)
        assert translate(dna).text == protein


class TestSixFrames:
    def test_six_frames_for_long_sequence(self):
        rng = np.random.default_rng(3)
        s = Sequence.random("x", 60, rng, DNA)
        frames = six_frame_translations(s)
        assert len(frames) == 6
        labels = {f.id.rsplit("|", 1)[-1] for f in frames}
        assert labels == {"frame+1", "frame+2", "frame+3",
                          "frame-1", "frame-2", "frame-3"}

    def test_short_sequence_fewer_frames(self):
        s = Sequence.from_text("x", "ATGG", DNA)  # frames of length 4,3,2
        frames = six_frame_translations(s)
        assert 2 <= len(frames) < 6

    def test_frames_contain_encoded_protein(self):
        rng = np.random.default_rng(4)
        protein = random_protein(40, rng).text.replace("*", "A")
        dna = encode_protein_as_dna(protein)
        frames = six_frame_translations(dna)
        assert any(protein in f.text for f in frames)


class TestTranslatedSearch:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(5)
        target = random_protein(80, rng, id="target").text.replace("*", "A")
        target_seq = Sequence.from_text("target", target, PROTEIN)
        decoys = [random_protein(150, rng, id=f"d{i}") for i in range(5)]
        db = Database.from_sequences([target_seq, *decoys])
        # DNA query encodes the target protein, on the reverse strand with
        # an offset so a non-trivial frame must win.
        dna = encode_protein_as_dna(target, id="dna_query")
        from repro.sequence.codon import reverse_complement

        shifted = Sequence(
            "dna_query",
            np.concatenate(
                [DNA.encode("GG"), reverse_complement(dna).codes,
                 DNA.encode("A")]
            ),
            DNA,
        )
        return shifted, db

    def test_finds_target_in_reverse_frame(self, setup):
        query, db = setup
        hits = translated_search(query, db, top=3)
        assert hits[0].id == "target"
        assert hits[0].frame.startswith("frame-")
        assert hits[0].score > 3 * hits[1].score

    def test_hit_order(self, setup):
        query, db = setup
        hits = translated_search(query, db, top=6)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self, setup):
        query, db = setup
        with pytest.raises(ValueError, match="materialized"):
            translated_search(query, Database.from_lengths([10, 20]))
        with pytest.raises(ValueError):
            FrameHit(0, "x", -1, "frame+1")

    def test_protein_query_rejected(self, setup):
        _, db = setup
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            translated_search(random_protein(30, rng), db)
