"""Regression tests for degenerate FASTA records (empty bodies)."""

import io

import pytest

from repro.sequence import Database, read_fasta, write_fasta


class TestEmptyRecords:
    def test_empty_record_skipped_with_warning(self):
        fasta = ">a\nMKV\n>empty no residues here\n>b\nACD\n"
        with pytest.warns(UserWarning, match="'empty'"):
            records = list(read_fasta(fasta))
        assert [r.id for r in records] == ["a", "b"]

    def test_trailing_empty_record_skipped(self):
        with pytest.warns(UserWarning, match="'tail'"):
            records = list(read_fasta(">a\nMKV\n>tail\n"))
        assert [r.id for r in records] == ["a"]

    def test_unnamed_empty_record_named_in_warning(self):
        with pytest.warns(UserWarning, match="<unnamed>"):
            records = list(read_fasta(">\n>b\nACD\n"))
        assert [r.id for r in records] == ["b"]

    def test_database_roundtrip_survives_empty_records(self):
        """The original failure mode: an empty record used to surface as
        Database.from_sequences' unrelated 'all sequence lengths must be
        positive' error."""
        fasta = ">a\nMKV\n>ghost\n>b\nACDEF\n"
        with pytest.warns(UserWarning):
            db = Database.from_sequences(list(read_fasta(fasta)))
        assert len(db) == 2
        buf = io.StringIO()
        write_fasta(list(db), buf)
        back = list(read_fasta(buf.getvalue()))
        assert [r.id for r in back] == ["a", "b"]
        assert [r.text for r in back] == ["MKV", "ACDEF"]
