"""Tests for query profiles (plain and packed-4 layouts)."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, PROTEIN
from repro.sequence import PackedQueryProfile, QueryProfile


@pytest.fixture
def query():
    return PROTEIN.encode("MKVLAWCRNDE")


class TestQueryProfile:
    def test_matches_matrix(self, query):
        prof = QueryProfile(query, BLOSUM62)
        for i, q in enumerate(query):
            for d in range(PROTEIN.size):
                assert prof.score(i, d) == BLOSUM62.scores[q, d]

    def test_column_is_contiguous(self, query):
        prof = QueryProfile(query, BLOSUM62)
        col = prof.column(PROTEIN.code_of("W"))
        assert col.flags["C_CONTIGUOUS"]
        assert col.shape == (len(query),)
        assert col[5] == BLOSUM62.score("W", "W")

    def test_read_only(self, query):
        prof = QueryProfile(query, BLOSUM62)
        with pytest.raises(ValueError):
            prof.scores[0, 0] = 99

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            QueryProfile(np.array([], dtype=np.uint8), BLOSUM62)

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError):
            QueryProfile(np.array([250], dtype=np.uint8), BLOSUM62)


class TestPackedQueryProfile:
    def test_pack_count(self, query):
        prof = PackedQueryProfile(query, BLOSUM62)  # len 11 -> 3 packs
        assert prof.n_packs == 3
        assert prof.fetches_per_column() == 3

    def test_exact_multiple(self):
        q = PROTEIN.encode("MKVLAWCR")  # len 8 -> 2 packs
        prof = PackedQueryProfile(q, BLOSUM62)
        assert prof.n_packs == 2

    def test_fetch_values_match_plain_profile(self, query):
        plain = QueryProfile(query, BLOSUM62)
        packed = PackedQueryProfile(query, BLOSUM62)
        for d in range(PROTEIN.size):
            for p in range(packed.n_packs):
                vec = packed.fetch(d, p)
                for k in range(4):
                    i = 4 * p + k
                    if i < len(query):
                        assert vec[k] == plain.score(i, d)

    def test_padding_uses_min_score(self, query):
        packed = PackedQueryProfile(query, BLOSUM62)
        # len 11: last pack has one padded lane.
        last = packed.fetch(0, packed.n_packs - 1)
        assert last[3] == BLOSUM62.min_score
        assert packed.pad_score == BLOSUM62.min_score

    def test_fetch_bounds(self, query):
        packed = PackedQueryProfile(query, BLOSUM62)
        with pytest.raises(IndexError):
            packed.fetch(0, packed.n_packs)
        with pytest.raises(IndexError):
            packed.fetch(0, -1)

    def test_fetch_reduction_factor(self):
        """One packed fetch serves 4 query rows: the paper's 4x reduction."""
        q = PROTEIN.encode("A" * 1024)
        plain = QueryProfile(q, BLOSUM62)
        packed = PackedQueryProfile(q, BLOSUM62)
        assert plain.length == 4 * packed.fetches_per_column()
