"""Unit tests for the Database container and CUDASW++ preprocessing."""

import numpy as np
import pytest

from repro.alphabet import DNA, PROTEIN
from repro.sequence import Database, Sequence


def make_db(lengths, seed=0):
    rng = np.random.default_rng(seed)
    seqs = [Sequence.random(f"s{i}", n, rng) for i, n in enumerate(lengths)]
    return Database.from_sequences(seqs)


class TestConstruction:
    def test_from_sequences(self):
        db = make_db([5, 10, 3])
        assert len(db) == 3
        assert db.total_residues == 18
        assert db.has_residues
        assert [len(db[i]) for i in range(3)] == [5, 10, 3]

    def test_roundtrip_sequences(self):
        rng = np.random.default_rng(3)
        seqs = [Sequence.random(f"s{i}", 20, rng) for i in range(4)]
        db = Database.from_sequences(seqs)
        for i, s in enumerate(seqs):
            assert db[i].text == s.text
            assert db[i].id == s.id

    def test_negative_index(self):
        db = make_db([5, 6, 7])
        assert len(db[-1]) == 7

    def test_out_of_range_index(self):
        db = make_db([5])
        with pytest.raises(IndexError):
            db[1]

    def test_iter(self):
        db = make_db([4, 4])
        assert len(list(db)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Database.from_sequences([])

    def test_mixed_alphabets_rejected(self):
        rng = np.random.default_rng(0)
        a = Sequence.random("a", 5, rng, PROTEIN)
        b = Sequence.random("b", 5, rng, DNA)
        with pytest.raises(ValueError, match="mixed"):
            Database.from_sequences([a, b])

    def test_from_lengths(self):
        db = Database.from_lengths([10, 20, 30])
        assert not db.has_residues
        assert db.total_residues == 60
        with pytest.raises(ValueError, match="lengths-only"):
            db.codes_of(0)
        with pytest.raises(ValueError, match="lengths-only"):
            db[0]

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Database.from_lengths([10, 0, 5])

    def test_inconsistent_offsets_rejected(self):
        with pytest.raises(ValueError):
            Database(
                np.array([3]),
                np.zeros(5, dtype=np.uint8),
                np.array([0, 5]),
                None,
            )

    def test_codes_without_offsets_rejected(self):
        with pytest.raises(ValueError, match="together"):
            Database(np.array([3]), np.zeros(3, dtype=np.uint8), None, None)


class TestStats:
    def test_stats_values(self):
        db = Database.from_lengths([10, 20, 30, 40])
        st = db.stats()
        assert st.count == 4
        assert st.total_residues == 100
        assert st.min_length == 10
        assert st.max_length == 40
        assert st.mean_length == 25.0
        assert st.median_length == 25.0

    def test_fraction_over(self):
        db = Database.from_lengths([10, 20, 30, 40])
        assert db.fraction_over(30) == 0.5  # >= threshold counts
        assert db.fraction_over(41) == 0.0
        assert db.fraction_over(1) == 1.0


class TestPreprocessing:
    def test_sorted_by_length(self):
        db = make_db([30, 10, 20])
        s = db.sorted_by_length()
        assert list(s.lengths) == [10, 20, 30]
        # Residues follow their sequences.
        assert s[0].text == db[1].text

    def test_sort_is_stable(self):
        db = make_db([5, 5, 5])  # named s0, s1, s2 with equal lengths
        s = db.sorted_by_length()
        assert [s.id_of(i) for i in range(3)] == ["s0", "s1", "s2"]

    def test_split_by_threshold(self):
        db = Database.from_lengths([10, 3072, 100, 5000])
        below, above = db.split_by_threshold(3072)
        assert list(below.lengths) == [10, 100]
        assert list(above.lengths) == [3072, 5000]  # >= goes to intra-task

    def test_split_all_below(self):
        db = Database.from_lengths([10, 20])
        below, above = db.split_by_threshold(3072)
        assert above is None
        assert len(below) == 2

    def test_split_all_above(self):
        db = Database.from_lengths([4000, 5000])
        below, above = db.split_by_threshold(3072)
        assert below is None
        assert len(above) == 2

    def test_split_bad_threshold(self):
        db = Database.from_lengths([10])
        with pytest.raises(ValueError):
            db.split_by_threshold(0)

    def test_partition_groups(self):
        db = Database.from_lengths(np.arange(1, 11)).sorted_by_length()
        groups = db.partition_groups(4)
        assert [g.size for g in groups] == [4, 4, 2]
        assert groups[0].max_length == 4
        assert groups[2].max_length == 10
        assert groups[1].total_residues == 5 + 6 + 7 + 8

    def test_partition_bad_size(self):
        db = Database.from_lengths([10])
        with pytest.raises(ValueError):
            db.partition_groups(0)

    def test_group_load_balance_efficiency(self):
        db = Database.from_lengths([10, 10, 10, 40]).sorted_by_length()
        (g,) = db.partition_groups(4)
        assert g.load_balance_efficiency == pytest.approx(70 / (4 * 40))

    def test_select_preserves_residues(self):
        db = make_db([5, 6, 7])
        sub = db.select(np.array([2, 0]))
        assert sub[0].text == db[2].text
        assert sub[1].text == db[0].text

    def test_select_empty_rejected(self):
        db = make_db([5])
        with pytest.raises(ValueError):
            db.select(np.array([], dtype=np.int64))
