"""Packaging and public-API hygiene."""

import importlib
import subprocess
import sys

import pytest


PACKAGES = [
    "repro",
    "repro.alphabet",
    "repro.sequence",
    "repro.sw",
    "repro.cuda",
    "repro.kernels",
    "repro.app",
    "repro.baselines",
    "repro.stats",
    "repro.analysis",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize(
        "name",
        [p for p in PACKAGES if p not in ("repro", "repro.cli")],
    )
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__")
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_no_duplicate_exports(self):
        for name in PACKAGES:
            module = importlib.import_module(name)
            exports = getattr(module, "__all__", [])
            assert len(set(exports)) == len(exports), name


class TestCliEntryPoint:
    def test_module_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "align" in result.stdout
        assert "exhibit" in result.stdout

    def test_subcommand_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "predict", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "--profile" in result.stdout


class TestDocumentation:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_packages_have_docstrings(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__) > 60, name

    def test_repo_documents_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/cost-model.md", "docs/kernels.md"):
            path = root / doc
            assert path.exists(), doc
            assert len(path.read_text()) > 500, doc

    def test_public_classes_documented(self):
        """Spot-check: every public symbol of the core packages carries a
        docstring."""
        for name in ("repro.sw", "repro.kernels", "repro.app"):
            module = importlib.import_module(name)
            for symbol in module.__all__:
                obj = getattr(module, symbol)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
