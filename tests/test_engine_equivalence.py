"""Randomized equivalence: batched engine scores == scalar reference.

The batched lanes engine must be *bit-identical* to
:func:`repro.sw.scalar.sw_score_scalar` on every pair — across gap
penalty configurations, substitution matrices of different score ranges
(BLOSUM62 plus BLOSUM45/80-style matrices derived with the repository's
own Henikoff builder at clustering thresholds 0.45/0.80 — this offline
environment ships no unverifiable matrix constants), degenerate
length-1 sequences, maximally ragged groups, and groups smaller than
the configured group size.
"""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty, build_blosum
from repro.engine import BatchedEngine
from repro.sequence import Database, Sequence, random_protein
from repro.sw import sw_score_scalar

GAP_CONFIGS = (
    GapPenalty.cudasw_default(),            # open 10 extend 2 (rho 12)
    GapPenalty.from_open_extend(10, 1),     # rho 11, sigma 1
    GapPenalty(rho=5, sigma=5),             # linear gaps (rho == sigma)
    GapPenalty(rho=20, sigma=1),            # expensive open, cheap extend
)


def _blocks_from_blosum62_target(rng, n_blocks=150, depth=6, width=30):
    """Alignment blocks sampled under BLOSUM62's implied pair
    distribution (as the blosum_builder tests do)."""
    from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES

    p = SWISSPROT_AA_FREQUENCIES.copy()
    target = np.outer(p, p) * np.exp(0.3466 * BLOSUM62.scores.astype(float))
    target /= target.sum()
    size = BLOSUM62.alphabet.size
    pairs = rng.choice(size * size, p=target.ravel(), size=(n_blocks, width))
    blocks = []
    half = depth // 2
    for bi in range(n_blocks):
        a, b = np.divmod(pairs[bi], size)
        block = np.empty((depth, width), dtype=np.uint8)
        block[:half, :] = a
        block[half:, :] = b
        blocks.append(block)
    return blocks


@pytest.fixture(scope="module")
def matrices():
    """BLOSUM62 plus derived 45-style and 80-style matrices."""
    rng = np.random.default_rng(62)
    blocks = _blocks_from_blosum62_target(rng)
    return (
        BLOSUM62,
        build_blosum(blocks, threshold=0.45, name="blosum45-style"),
        build_blosum(blocks, threshold=0.80, name="blosum80-style"),
    )


@pytest.fixture(scope="module")
def ragged_db():
    """Ragged lengths including several length-1 sequences."""
    rng = np.random.default_rng(3)
    lengths = [1, 1, 2, 3, 60, 5, 44, 1, 17, 9, 31, 58, 4, 23]
    seqs = [Sequence.random(f"s{i}", n, rng) for i, n in enumerate(lengths)]
    return Database.from_sequences(seqs)


def _reference(query, db, matrix, gaps):
    return np.array(
        [
            sw_score_scalar(query.codes, db.codes_of(i), matrix, gaps)
            for i in range(len(db))
        ],
        dtype=np.int64,
    )


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("gaps", GAP_CONFIGS, ids=lambda g: f"{g.rho}-{g.sigma}")
    @pytest.mark.parametrize("mat_index", (0, 1, 2), ids=("b62", "b45", "b80"))
    def test_matches_scalar(self, matrices, ragged_db, mat_index, gaps):
        matrix = matrices[mat_index]
        rng = np.random.default_rng(100 * mat_index + gaps.rho)
        engine = BatchedEngine(matrix, gaps, group_size=5)
        for m in (1, 23):
            query = random_protein(m, rng, id="q")
            scores, report = engine.search(query, ragged_db)
            assert np.array_equal(
                scores, _reference(query, ragged_db, matrix, gaps)
            )
            # group_size 5 over 14 sequences: ragged groups + a short tail.
            assert report.group_sizes == (5, 5, 4)

    def test_derived_matrices_are_not_blosum62(self, matrices):
        """The 45/80-style matrices must genuinely vary the score range."""
        b62, b45, b80 = matrices
        assert not np.array_equal(b45.scores, b62.scores)
        assert not np.array_equal(b80.scores, b62.scores)
        assert not np.array_equal(b45.scores, b80.scores)


class TestEdgeShapes:
    def test_all_length_one(self):
        rng = np.random.default_rng(4)
        db = Database.from_sequences(
            [Sequence.random(f"s{i}", 1, rng) for i in range(7)]
        )
        gaps = GapPenalty.cudasw_default()
        engine = BatchedEngine(BLOSUM62, gaps, group_size=3)
        for m in (1, 12):
            q = random_protein(m, rng, id="q")
            scores, _ = engine.search(q, db)
            assert np.array_equal(scores, _reference(q, db, BLOSUM62, gaps))

    def test_maximally_ragged_group(self):
        """One long lane among length-1 lanes: the packer's
        tail-degeneracy gap split cleaves the 1-vs-120 gap into two
        dense groups instead of one 15%-efficient rectangle, and padding
        must never leak into any lane's score."""
        rng = np.random.default_rng(5)
        db = Database.from_sequences(
            [Sequence.random("long", 120, rng)]
            + [Sequence.random(f"tiny{i}", 1, rng) for i in range(6)]
        )
        gaps = GapPenalty.cudasw_default()
        engine = BatchedEngine(BLOSUM62, gaps, group_size=7)
        q = random_protein(30, rng, id="q")
        scores, report = engine.search(q, db)
        assert np.array_equal(scores, _reference(q, db, BLOSUM62, gaps))
        assert report.group_sizes == (6, 1)
        assert report.group_efficiencies == (1.0, 1.0)

    def test_group_smaller_than_group_size(self):
        rng = np.random.default_rng(6)
        db = Database.from_sequences(
            [Sequence.random(f"s{i}", int(n), rng)
             for i, n in enumerate([8, 20, 33])]
        )
        gaps = GapPenalty.cudasw_default()
        engine = BatchedEngine(BLOSUM62, gaps, group_size=64)
        q = random_protein(15, rng, id="q")
        scores, report = engine.search(q, db)
        assert np.array_equal(scores, _reference(q, db, BLOSUM62, gaps))
        assert report.n_groups == 1
        assert report.group_sizes == (3,)

    def test_adversarial_penalties_use_wide_dtype(self):
        """Penalties at the validation cap exercise the int64 path."""
        rng = np.random.default_rng(7)
        db = Database.from_sequences(
            [Sequence.random(f"s{i}", int(n), rng)
             for i, n in enumerate([1, 9, 25])]
        )
        gaps = GapPenalty(rho=2**20, sigma=2**20)
        engine = BatchedEngine(BLOSUM62, gaps, group_size=2)
        q = random_protein(11, rng, id="q")
        scores, _ = engine.search(q, db)
        assert np.array_equal(scores, _reference(q, db, BLOSUM62, gaps))

    def test_scores_return_in_database_order(self):
        """Length sorting inside the engine must not leak into the output
        order: a descending-length database still gets scores aligned
        with its own indexing."""
        rng = np.random.default_rng(8)
        db = Database.from_sequences(
            [Sequence.random(f"s{i}", n, rng)
             for i, n in enumerate([90, 70, 50, 30, 10])]
        )
        gaps = GapPenalty.cudasw_default()
        q = random_protein(25, rng, id="q")
        scores, _ = BatchedEngine(BLOSUM62, gaps, group_size=2).search(q, db)
        assert np.array_equal(scores, _reference(q, db, BLOSUM62, gaps))
