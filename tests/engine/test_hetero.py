"""Heterogeneous length-threshold dispatch: the ISSUE 8 contract.

``lane_engine="hetero"`` splits the packed database at a length
threshold — bulk groups go to the striped Farrar engine, the long tail
to the strip-sweep engine — and must stay *bit-identical* to the scalar
reference at every threshold, under a worker pool, and across a real
SIGKILL-and-resume.  The checkpoint fingerprint must refuse a hetero
journal replayed under a different split (the per-group engine
assignment is part of the search identity).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import BatchedEngine, CheckpointError
from repro.sequence import Database, Sequence, random_protein, write_fasta
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()


def _reference(query, db, matrix, gaps):
    return np.array(
        [sw_score_scalar(query, s, matrix, gaps) for s in db],
        dtype=np.int64,
    )


def _bimodal_db(rng, n_short=24, n_long=3):
    """Swiss-Prot-shaped: a short bulk plus a few very long subjects."""
    seqs = [
        Sequence.random(f"s{i}", int(n), rng)
        for i, n in enumerate(rng.integers(20, 300, size=n_short))
    ] + [
        Sequence.random(f"long{i}", int(n), rng)
        for i, n in enumerate(rng.integers(1200, 1500, size=n_long))
    ]
    return Database.from_sequences(seqs)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(81)
    query = random_protein(40, rng, id="Q1")
    db = _bimodal_db(rng)
    return {"query": query, "db": db,
            "reference": _reference(query, db, BLOSUM62, GP)}


class TestHeteroEquivalence:
    def thresholds(self, db):
        lengths = np.sort(db.lengths)
        return (0, 1, int(np.median(lengths)), int(lengths.max()) + 1)

    def test_bit_identical_to_scalar_across_thresholds(self, corpus):
        """{0, 1, median, max+1} covers all-strips, mixed, and
        all-bulk partitions — every one must match the scalar path."""
        db = corpus["db"]
        for t in self.thresholds(db):
            engine = BatchedEngine(
                BLOSUM62, GP, group_size=8,
                lane_engine="hetero", split_threshold=t,
            )
            scores, report = engine.search(corpus["query"], db)
            assert np.array_equal(scores, corpus["reference"]), t
            assert report.split_threshold == t

    def test_auto_threshold_bit_identical_and_mixed(self, corpus):
        engine = BatchedEngine(
            BLOSUM62, GP, group_size=8,
            lane_engine="hetero", split_threshold="auto",
        )
        scores, report = engine.search(corpus["query"], corpus["db"])
        assert np.array_equal(scores, corpus["reference"])
        # The bimodal corpus must actually split: both engines ran.
        assert set(report.lane_engines) == {"striped", "strips"}
        lengths = corpus["db"].lengths
        assert int(lengths.min()) <= report.split_threshold
        assert report.split_threshold < int(lengths.max())

    def test_strip_width_variants_bit_identical(self, corpus):
        for width in (64, 257, 4096):
            engine = BatchedEngine(
                BLOSUM62, GP, group_size=8,
                lane_engine="hetero", split_threshold=300,
                strip_width=width,
            )
            scores, _ = engine.search(corpus["query"], corpus["db"])
            assert np.array_equal(scores, corpus["reference"]), width


class TestHeteroWorkerParity:
    #: Counter namespaces that must not depend on serial-vs-pool
    #: execution (executor bookkeeping legitimately differs).
    PARITY_PREFIXES = (
        "engine.pack.", "engine.dispatch.", "engine.strips.",
        "engine.sweep.", "engine.striped.",
    )

    def _run(self, corpus, workers):
        engine = BatchedEngine(
            BLOSUM62, GP, group_size=4,
            lane_engine="hetero", split_threshold=300,
            workers=workers,
        )
        with obs.collect("counters") as instr:
            scores, _ = engine.search(corpus["query"], corpus["db"])
        counters = {
            k: v for k, v in instr.counters.as_dict().items()
            if k.startswith(self.PARITY_PREFIXES)
        }
        return scores, counters

    def test_workers_2_scores_and_counters_match_serial(self, corpus):
        serial_scores, serial_counters = self._run(corpus, workers=1)
        pool_scores, pool_counters = self._run(corpus, workers=2)
        assert np.array_equal(pool_scores, serial_scores)
        assert np.array_equal(serial_scores, corpus["reference"])
        assert pool_counters == serial_counters
        assert any(
            k.startswith("engine.strips.") for k in pool_counters
        )  # the tail really went through the strip engine


class TestHeteroCheckpointIdentity:
    def test_journal_refused_under_different_threshold(self, corpus, tmp_path):
        """The per-group engine assignment is fingerprinted: a hetero
        journal written at one split must refuse to resume at another."""
        journal = tmp_path / "hetero.wal"
        engine_a = BatchedEngine(
            BLOSUM62, GP, group_size=8,
            lane_engine="hetero", split_threshold=300,
        )
        engine_a.search(corpus["query"], corpus["db"], checkpoint=journal)
        engine_b = BatchedEngine(
            BLOSUM62, GP, group_size=8,
            lane_engine="hetero", split_threshold=1,
        )
        with pytest.raises(CheckpointError, match="different search"):
            engine_b.search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )

    def test_journal_refused_under_different_strip_width(
        self, corpus, tmp_path
    ):
        journal = tmp_path / "width.wal"
        BatchedEngine(
            BLOSUM62, GP, group_size=8,
            lane_engine="hetero", split_threshold=300, strip_width=512,
        ).search(corpus["query"], corpus["db"], checkpoint=journal)
        with pytest.raises(CheckpointError, match="different search"):
            BatchedEngine(
                BLOSUM62, GP, group_size=8,
                lane_engine="hetero", split_threshold=300, strip_width=64,
            ).search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )

    def test_same_threshold_resumes_cleanly(self, corpus, tmp_path):
        journal = tmp_path / "same.wal"
        make = lambda: BatchedEngine(  # noqa: E731
            BLOSUM62, GP, group_size=8,
            lane_engine="hetero", split_threshold=300,
        )
        make().search(corpus["query"], corpus["db"], checkpoint=journal)
        with obs.collect("counters") as instr:
            scores, _ = make().search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )
        assert np.array_equal(scores, corpus["reference"])
        c = instr.counters.as_dict()
        assert c.get("engine.checkpoint.groups_recomputed", 0) == 0
        assert c["engine.checkpoint.groups_replayed"] >= 1


#: Crashing child for the mixed-engine kill-and-resume test: a hetero
#: checkpointed search with both lane kernels slowed, so SIGKILL lands
#: between fsync'd journal appends with bulk *and* strip groups in play.
CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    import repro.engine.executor as executor
    from repro.alphabet import BLOSUM62, GapPenalty
    from repro.engine import BatchedEngine
    from repro.sequence import Database, read_fasta_file

    db_path, query_path, journal = sys.argv[1:4]

    def slowed(real):
        def slow(profile, group, gaps, **kwargs):
            time.sleep(0.12)
            return real(profile, group, gaps, **kwargs)
        return slow

    executor.score_packed_group_striped = slowed(
        executor.score_packed_group_striped)
    executor.score_packed_group_strips = slowed(
        executor.score_packed_group_strips)
    db = Database.from_sequences(read_fasta_file(db_path))
    query = read_fasta_file(query_path)[0]
    BatchedEngine(
        BLOSUM62, GapPenalty.cudasw_default(), group_size=4,
        lane_engine="hetero", split_threshold=300,
    ).search(query, db, checkpoint=journal)
    """
)


class TestHeteroSigkillResume:
    def test_sigkill_mixed_engine_resume_bit_identical(self, corpus, tmp_path):
        query_path = tmp_path / "query.fasta"
        db_path = tmp_path / "db.fasta"
        write_fasta([corpus["query"]], query_path)
        write_fasta(list(corpus["db"]), db_path)
        journal = tmp_path / "hetero-killed.wal"

        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(db_path),
             str(query_path), str(journal)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
        )
        try:
            deadline = time.monotonic() + 30.0
            floor = 120 + 60 * 2  # header plus two fsync'd appends
            while time.monotonic() < deadline:
                if journal.exists() and journal.stat().st_size >= floor:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("journal never grew two records")
        finally:
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        make = lambda: BatchedEngine(  # noqa: E731
            BLOSUM62, GP, group_size=4,
            lane_engine="hetero", split_threshold=300,
        )
        with obs.collect("counters") as instr:
            scores, report = make().search(
                corpus["query"], corpus["db"],
                checkpoint=journal, resume=True,
            )
        assert np.array_equal(scores, corpus["reference"])
        assert set(report.lane_engines) == {"striped", "strips"}
        c = instr.counters.as_dict()
        replayed = c.get("engine.checkpoint.groups_replayed", 0)
        recomputed = c.get("engine.checkpoint.groups_recomputed", 0)
        assert replayed >= 1
        assert recomputed >= 1
        assert replayed + recomputed == report.n_groups


class TestCostModelKnobs:
    """The 'auto' split cost constants are parameters, not baked in."""

    def test_strip_cell_cost_moves_the_threshold(self, corpus):
        def resolved(**knobs):
            engine = BatchedEngine(
                BLOSUM62, GP, group_size=4,
                lane_engine="hetero", split_threshold="auto", **knobs,
            )
            return engine._resolve_threshold(corpus["db"])

        default = resolved()
        # Strips priced near-free: everything should route to the strip
        # engine (threshold collapses); priced exorbitantly: the split
        # point must move the other way from the cheap setting.
        cheap = resolved(strip_cell_cost=0.01)
        costly = resolved(strip_cell_cost=50.0)
        assert cheap != costly
        assert default != cheap or default != costly

    def test_column_overhead_moves_the_threshold(self, corpus):
        def resolved(**knobs):
            engine = BatchedEngine(
                BLOSUM62, GP, group_size=4,
                lane_engine="hetero", split_threshold="auto", **knobs,
            )
            return engine._resolve_threshold(corpus["db"])

        # A huge fixed per-column striped overhead makes striped bulk
        # groups unattractive relative to strips.
        assert resolved(striped_column_overhead=1e6) != resolved()

    def test_scores_bit_identical_across_cost_settings(self, corpus):
        for knobs in ({}, {"strip_cell_cost": 0.01},
                      {"striped_column_overhead": 1e6}):
            engine = BatchedEngine(
                BLOSUM62, GP, group_size=4,
                lane_engine="hetero", split_threshold="auto", **knobs,
            )
            scores, _ = engine.search(corpus["query"], corpus["db"])
            assert np.array_equal(scores, corpus["reference"])

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError, match="strip_cell_cost"):
            BatchedEngine(
                BLOSUM62, GP, lane_engine="hetero", strip_cell_cost=0.0,
            )
        with pytest.raises(ValueError, match="striped_column_overhead"):
            BatchedEngine(
                BLOSUM62, GP, lane_engine="hetero",
                striped_column_overhead=-1.0,
            )

    def test_search_api_threads_the_knobs(self, corpus):
        from repro.app import CudaSW
        from repro.cuda import TESLA_C2050

        app = CudaSW(TESLA_C2050)
        result, report = app.search(
            corpus["query"], corpus["db"], engine="hetero",
            strip_cell_cost=0.01,
        )
        assert np.array_equal(result.scores, corpus["reference"])
        with pytest.raises(ValueError, match="strip_cell_cost"):
            app.search(
                corpus["query"], corpus["db"], engine="batched",
                strip_cell_cost=2.0,
            )
