"""Tests for the group executor: parallel equivalence and fallbacks."""

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import BatchedEngine, FaultPolicy, pack_database, run_groups
from repro.engine.faults import auto_chunksize
from repro.sequence import Database, QueryProfile, Sequence, random_protein

GP = GapPenalty.cudasw_default()


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(1)
    return Database.from_sequences(
        [Sequence.random(f"s{i}", int(n), rng)
         for i, n in enumerate(rng.integers(5, 120, size=24))]
    )


@pytest.fixture(scope="module")
def profile():
    rng = np.random.default_rng(2)
    return QueryProfile(random_protein(40, rng).codes, BLOSUM62)


class TestRunGroups:
    def test_parallel_equals_serial(self, db, profile):
        groups = pack_database(db, 6)
        serial = run_groups(profile, groups, GP, workers=1)
        parallel = run_groups(profile, groups, GP, workers=2)
        assert len(serial) == len(parallel) == len(groups)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_single_group_short_circuits_to_serial(self, db, profile):
        groups = pack_database(db, len(db))
        assert len(groups) == 1
        [scores] = run_groups(profile, groups, GP, workers=4)
        assert scores.shape == (len(db),)

    def test_workers_validation(self, db, profile):
        groups = pack_database(db, 6)
        with pytest.raises(ValueError):
            run_groups(profile, groups, GP, workers=0)

    def test_chunked_dispatch_matches_serial(self, db, profile):
        """Many tiny groups dispatch as chunks (not one round trip per
        group, the old pool.map chunksize=1 behavior) with identical
        scores."""
        groups = pack_database(db, 1)  # 24 single-lane groups
        serial = run_groups(profile, groups, GP, workers=1)
        with obs.collect("counters") as instr:
            chunked = run_groups(profile, groups, GP, workers=2)
        for a, b in zip(serial, chunked):
            assert np.array_equal(a, b)
        c = instr.counters.as_dict()
        expected_tasks = -(-len(groups) // auto_chunksize(len(groups), 2))
        assert c["engine.executor.tasks_submitted"] == expected_tasks
        assert expected_tasks < len(groups)

    def test_auto_chunksize(self):
        assert auto_chunksize(0, 2) == 1
        assert auto_chunksize(5, 2) == 1
        assert auto_chunksize(4000, 8) == 125
        with pytest.raises(ValueError):
            auto_chunksize(4, 0)

    def test_explicit_chunksize_one_gives_per_group_tasks(self, db, profile):
        groups = pack_database(db, 2)
        with obs.collect("counters") as instr:
            run_groups(
                profile, groups, GP, workers=2,
                policy=FaultPolicy(chunksize=1),
            )
        c = instr.counters.as_dict()
        assert c["engine.executor.tasks_submitted"] == len(groups)

    def test_pool_failure_falls_back_to_serial(self, db, profile, monkeypatch):
        """An environment that cannot fork still gets correct results."""
        import concurrent.futures

        class NoPool:
            def __init__(self, *a, **k):
                raise OSError("process pools forbidden here")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", NoPool
        )
        groups = pack_database(db, 6)
        fallback = run_groups(profile, groups, GP, workers=3)
        serial = run_groups(profile, groups, GP, workers=1)
        for a, b in zip(fallback, serial):
            assert np.array_equal(a, b)


class TestBatchedEngineWorkers:
    def test_engine_results_identical_across_worker_counts(self, db):
        rng = np.random.default_rng(3)
        q = random_protein(33, rng, id="q")
        s1, r1 = BatchedEngine(BLOSUM62, GP, group_size=6, workers=1).search(q, db)
        s2, r2 = BatchedEngine(BLOSUM62, GP, group_size=6, workers=3).search(q, db)
        assert np.array_equal(s1, s2)
        assert r1.group_efficiencies == r2.group_efficiencies
        assert r1.workers == 1 and r2.workers == 3

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            BatchedEngine(BLOSUM62, GP, group_size=0)
        with pytest.raises(ValueError):
            BatchedEngine(BLOSUM62, GP, workers=0)

    def test_report_aggregates(self, db):
        rng = np.random.default_rng(4)
        q = random_protein(20, rng, id="q")
        _, report = BatchedEngine(BLOSUM62, GP, group_size=7).search(q, db)
        assert report.n_groups == len(report.group_sizes)
        assert sum(report.group_sizes) == len(db)
        assert report.residues == db.total_residues
        assert report.padding_efficiency == pytest.approx(
            report.residues / report.padded_cells
        )
        assert all(0 < e <= 1 for e in report.group_efficiencies)
