"""Edge-case tests for the batched engine's packing report."""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import BatchedEngine, EngineReport
from repro.sequence import Database, Sequence, random_protein


class TestPaddingEfficiency:
    def test_empty_report_is_perfectly_efficient(self):
        report = EngineReport(
            group_size=8,
            workers=1,
            group_sizes=(),
            group_max_lengths=(),
            group_efficiencies=(),
            residues=0,
            padded_cells=0,
        )
        assert report.n_groups == 0
        assert report.padding_efficiency == 1.0  # no ZeroDivisionError

    def test_single_sequence_database(self):
        rng = np.random.default_rng(3)
        db = Database.from_sequences([Sequence.random("only", 37, rng)])
        query = random_protein(20, rng, id="q")
        engine = BatchedEngine(BLOSUM62, GapPenalty.cudasw_default())
        scores, report = engine.search(query, db)
        assert scores.shape == (1,)
        # One lane, no padding partner: the rectangle is exactly full.
        assert report.residues == 37
        assert report.padded_cells == 37
        assert report.padding_efficiency == 1.0
        assert report.group_sizes == (1,)

    def test_mixed_lengths_efficiency_below_one(self):
        rng = np.random.default_rng(4)
        db = Database.from_sequences(
            [
                Sequence.random("a", 10, rng),
                Sequence.random("b", 50, rng),
            ]
        )
        query = random_protein(20, rng, id="q")
        engine = BatchedEngine(
            BLOSUM62, GapPenalty.cudasw_default(), group_size=2
        )
        _, report = engine.search(query, db)
        assert report.residues == 60
        assert report.padded_cells == 100  # 2 lanes x max length 50
        assert report.padding_efficiency == pytest.approx(0.6)
