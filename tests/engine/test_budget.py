"""Memory-budget tests: oversized groups split instead of OOM-killing."""

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import (
    BatchedEngine,
    MemoryBudget,
    estimate_group_bytes,
    pack_database,
)
from repro.engine.budget import SWEEP_BYTES_PER_CELL
from repro.sequence import Database, Sequence, random_protein

GP = GapPenalty.cudasw_default()


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(41)
    return Database.from_sequences(
        [Sequence.random(f"s{i}", int(n), rng)
         for i, n in enumerate(rng.integers(10, 200, size=24))]
    )


class TestEstimate:
    def test_scales_with_geometry(self):
        assert estimate_group_bytes(1, 1) == 2 * SWEEP_BYTES_PER_CELL
        assert estimate_group_bytes(4, 99) == 4 * 100 * SWEEP_BYTES_PER_CELL

    def test_rejects_degenerate_geometry(self):
        for size, length in ((0, 10), (10, 0), (-1, 5)):
            with pytest.raises(ValueError):
                estimate_group_bytes(size, length)


class TestMemoryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget.from_megabytes(-1)
        assert MemoryBudget.from_megabytes(2).max_group_bytes == 2 * 2**20

    def test_fits(self):
        budget = MemoryBudget(estimate_group_bytes(4, 100))
        assert budget.fits(4, 100)
        assert not budget.fits(4, 101)
        assert not budget.fits(5, 100)

    def test_split_points_whole_chunk_fits(self):
        budget = MemoryBudget.from_megabytes(64)
        assert budget.split_points([10, 20, 30, 40]) == [4]

    def test_split_points_greedy(self):
        # Budget admits exactly 2 lanes at width 100.
        budget = MemoryBudget(estimate_group_bytes(2, 100))
        assert budget.split_points([50, 100, 100, 100]) == [2, 4]
        # Ascending widths force earlier cuts as the rectangle widens.
        assert budget.split_points([10, 10, 10, 200]) == [3, 4]

    def test_split_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MemoryBudget.from_megabytes(1).split_points([])

    def test_oversized_singleton_kept_with_warning(self):
        budget = MemoryBudget(estimate_group_bytes(1, 50))
        with obs.collect("counters") as instr:
            with pytest.warns(UserWarning, match="exceeds the memory"):
                ends = budget.split_points([10, 1000, 2000])
        assert ends == [1, 2, 3]
        c = instr.counters.as_dict()
        assert c["engine.budget.oversized_singletons"] == 2


class TestPackWithBudget:
    def test_no_budget_packing_unchanged(self, db):
        assert len(pack_database(db, 4, budget=None)) == len(
            pack_database(db, 4)
        )

    def test_budget_splits_and_counts(self, db):
        baseline = pack_database(db, 8)
        widest = max(g.max_length for g in baseline)
        budget = MemoryBudget(estimate_group_bytes(3, widest))
        with obs.collect("counters") as instr:
            groups = pack_database(db, 8, budget=budget)
        assert len(groups) > len(baseline)
        for g in groups:
            assert budget.fits(g.size, g.max_length) or g.size == 1
        c = instr.counters.as_dict()
        assert c["engine.budget.groups_split"] >= 1
        assert (
            c["engine.budget.extra_groups"]
            == len(groups) - len(baseline)
        )
        # Every database sequence still lands in exactly one lane.
        seen = np.concatenate([g.indices for g in groups])
        assert sorted(seen.tolist()) == list(range(len(db)))

    def test_budgeted_scores_bit_identical(self, db):
        query = random_protein(35, np.random.default_rng(42), id="q")
        reference, _ = BatchedEngine(BLOSUM62, GP, group_size=8).search(
            query, db
        )
        budget = MemoryBudget(estimate_group_bytes(2, 256))
        scores, report = BatchedEngine(
            BLOSUM62, GP, group_size=8, memory_budget=budget
        ).search(query, db)
        assert np.array_equal(scores, reference)
        assert report.n_groups > 3  # the split really happened

    def test_budget_changes_checkpoint_fingerprint(self, db, tmp_path):
        """A journal written under one budget must not resume under
        another: the split changes the group decomposition."""
        from repro.engine import CheckpointError

        query = random_protein(30, np.random.default_rng(43), id="q")
        path = tmp_path / "budget.wal"
        budget = MemoryBudget(estimate_group_bytes(2, 256))
        BatchedEngine(
            BLOSUM62, GP, group_size=8, memory_budget=budget
        ).search(query, db, checkpoint=path)
        with pytest.raises(CheckpointError, match="different search"):
            BatchedEngine(BLOSUM62, GP, group_size=8).search(
                query, db, checkpoint=path, resume=True
            )
