"""Striped (Farrar) lane engine: equivalence, saturation tiers, wiring.

The engine's contract is *bit-identity* with the scalar reference on
every lane — including lanes that saturate the ``uint8`` tier at its
cap, lanes that blow through the ``int16`` tier into the exact int64
fallback, and the boundaries one unit either side of each cap.  The
tests here pin those boundaries explicitly (satellite of the striped
PR), plus the profile geometry, the executor/pool parity of the
``engine.striped.*`` counters, and the fan-out demotion gate.
"""

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty, build_blosum
from repro.app import CudaSW
from repro.engine import (
    BatchedEngine,
    DEFAULT_FANOUT_MIN_CELLS,
    FaultPolicy,
    score_packed_group_striped,
)
from repro.engine.executor import run_groups
from repro.engine.pack import pack_database, pack_group
from repro.sequence import Database, Sequence, StripedProfile, random_protein
from repro.sequence.profile import QueryProfile
from repro.sw import sw_score_scalar

GAP_CONFIGS = (
    GapPenalty.cudasw_default(),            # open 10 extend 2 (rho 12)
    GapPenalty.from_open_extend(10, 1),     # rho 11, sigma 1
    GapPenalty(rho=5, sigma=5),             # linear gaps (rho == sigma)
    GapPenalty(rho=2**20, sigma=2**20),     # validation-cap penalties
)


def _reference(query, db, matrix, gaps):
    return np.array(
        [
            sw_score_scalar(query.codes, db.codes_of(i), matrix, gaps)
            for i in range(len(db))
        ],
        dtype=np.int64,
    )


def _match_matrix(match: int, mismatch: int = -1, name: str = "match"):
    """A match/mismatch matrix over the protein alphabet — score ranges
    chosen per-test to park true scores exactly on tier caps."""
    n = BLOSUM62.alphabet.size
    w = np.full((n, n), mismatch, dtype=np.int32)
    np.fill_diagonal(w, match)
    return type(BLOSUM62)(name, BLOSUM62.alphabet, w)


def _self_db(query, lengths):
    """Database of the query's own prefixes: with a match/mismatch
    matrix an ungapped self-alignment of length ``n`` scores exactly
    ``n * match``."""
    return Database.from_sequences(
        [
            Sequence(f"d{i}", query.codes[:n].copy(), query.alphabet)
            for i, n in enumerate(lengths)
        ]
    )


@pytest.fixture(scope="module")
def ragged_db():
    rng = np.random.default_rng(3)
    lengths = [1, 1, 2, 3, 60, 5, 44, 1, 17, 9, 31, 58, 4, 23]
    seqs = [Sequence.random(f"s{i}", n, rng) for i, n in enumerate(lengths)]
    return Database.from_sequences(seqs)


class TestStripedProfile:
    def test_geometry_and_stripe_mapping(self):
        rng = np.random.default_rng(21)
        q = random_protein(150, rng, id="q")
        p = StripedProfile(q.codes, BLOSUM62, target_lanes=64)
        assert p.seg_len == 3                      # ceil(150 / 64)
        assert p.n_lanes == 50                     # ceil(150 / 3)
        assert p.padded_length == 150
        # out[c, i, k] == natural profile at query position k*seg_len+i.
        nat = p.base.scores + p.bias
        for c in (0, 7):
            for qpos in (0, 1, 3, 149):
                k, i = divmod(qpos, p.seg_len)
                assert p.profile8[c, i, k] == nat[c, qpos]

    def test_padding_rows_never_raise_a_score(self):
        rng = np.random.default_rng(22)
        q = random_protein(5, rng, id="q")
        p = StripedProfile(q.codes, BLOSUM62, target_lanes=3)
        assert p.seg_len == 2 and p.n_lanes == 3 and p.padded_length == 6
        # The padded position and the pad-sentinel symbol hold byte 0,
        # a true similarity of -bias <= 0.
        assert int(p.profile8[:, 1, 2].max()) == 0
        assert int(p.profile8[BLOSUM62.alphabet.size].max()) == 0

    def test_tier_caps_follow_matrix_range(self):
        rng = np.random.default_rng(23)
        q = random_protein(12, rng, id="q")
        p = StripedProfile(q.codes, BLOSUM62)
        assert p.bias == -int(BLOSUM62.scores.min())
        assert p.cap8 == 255 - (p.bias + int(BLOSUM62.scores.max()))
        assert p.tier8_supported and p.profile8 is not None
        # A huge-score matrix leaves the byte tier no headroom.
        wide = StripedProfile(q.codes, _match_matrix(255))
        assert not wide.tier8_supported and wide.profile8 is None
        assert wide.tier16_supported and wide.cap16 == 32767 - 255

    def test_target_lanes_validated(self):
        rng = np.random.default_rng(24)
        q = random_protein(4, rng, id="q")
        with pytest.raises(ValueError):
            StripedProfile(q.codes, BLOSUM62, target_lanes=0)


class TestStripedEquivalence:
    @pytest.mark.parametrize(
        "gaps", GAP_CONFIGS, ids=lambda g: f"{g.rho}-{g.sigma}"
    )
    def test_matches_scalar_on_ragged_db(self, ragged_db, gaps):
        rng = np.random.default_rng(gaps.rho % 97)
        engine = BatchedEngine(
            BLOSUM62, gaps, group_size=5, lane_engine="striped"
        )
        for m in (1, 23, 130):
            query = random_protein(m, rng, id="q")
            scores, report = engine.search(query, ragged_db)
            assert np.array_equal(
                scores, _reference(query, ragged_db, BLOSUM62, gaps)
            )
            assert report.lane_engine == "striped"

    def test_matches_scalar_on_derived_matrix(self, ragged_db):
        # A Henikoff-built matrix with a different score range than
        # BLOSUM62 (the offline build ships no other matrix constants).
        rng = np.random.default_rng(62)
        from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES

        p = SWISSPROT_AA_FREQUENCIES.copy()
        target = np.outer(p, p) * np.exp(
            0.3466 * BLOSUM62.scores.astype(float)
        )
        target /= target.sum()
        size = BLOSUM62.alphabet.size
        pairs = rng.choice(size * size, p=target.ravel(), size=(150, 30))
        blocks = []
        for bi in range(150):
            a, b = np.divmod(pairs[bi], size)
            block = np.empty((6, 30), dtype=np.uint8)
            block[:3, :] = a
            block[3:, :] = b
            blocks.append(block)
        matrix = build_blosum(blocks, threshold=0.45, name="b45-style")
        gaps = GapPenalty.cudasw_default()
        engine = BatchedEngine(
            matrix, gaps, group_size=4, lane_engine="striped"
        )
        query = random_protein(37, rng, id="q")
        scores, _ = engine.search(query, ragged_db)
        assert np.array_equal(
            scores, _reference(query, ragged_db, matrix, gaps)
        )

    def test_small_target_lanes_exercise_many_wraps(self, ragged_db):
        # Tiny stripes force the inter-lane wrap machinery constantly;
        # scores must not move.
        rng = np.random.default_rng(31)
        query = random_protein(40, rng, id="q")
        gaps = GapPenalty.from_open_extend(4, 1)
        profile = StripedProfile(query.codes, BLOSUM62, target_lanes=40)
        assert profile.seg_len == 1 and profile.n_lanes == 40
        groups = pack_database(ragged_db, 5)
        got = np.empty(len(ragged_db), dtype=np.int64)
        for g in groups:
            got[g.indices] = score_packed_group_striped(profile, g, gaps)
        assert np.array_equal(
            got, _reference(query, ragged_db, BLOSUM62, gaps)
        )


class TestSaturationBoundaries:
    """Scores parked exactly on / either side of each tier cap.

    With ``match=1, mismatch=-1`` the byte tier has ``bias == 1`` and
    ``cap8 == 255 - 2 == 253``; a prefix self-alignment of length ``n``
    scores exactly ``n``, so the database lane lengths *are* the true
    scores.
    """

    @pytest.mark.parametrize(
        "length,saturates",
        [
            (127, False),   # int8 boundary — irrelevant to biased uint8
            (128, False),
            (252, False),   # cap8 - 1: exact in the byte tier
            (253, True),    # == cap8: clipped, must re-run in int16
            (255, True),
            (256, True),
        ],
    )
    def test_uint8_cap_boundary(self, length, saturates):
        rng = np.random.default_rng(40)
        matrix = _match_matrix(1)
        gaps = GapPenalty.cudasw_default()
        query = random_protein(300, rng, id="q")
        db = _self_db(query, [length])
        profile = StripedProfile(query.codes, matrix)
        assert profile.cap8 == 253
        (group,) = pack_database(db, 4)
        with obs.collect("counters") as instr:
            scores = score_packed_group_striped(profile, group, gaps)
        assert scores[group.indices[0]] == length  # bit-exact
        c = instr.counters.as_dict()
        if saturates:
            assert c["engine.striped.saturated_lanes"] == 1
            assert c["engine.striped.overflow_reruns"] == 1
        else:
            assert c.get("engine.striped.saturated_lanes", 0) == 0
            assert "engine.striped.overflow_reruns" not in c

    @pytest.mark.parametrize(
        "length,past16",
        [
            (127, False),   # 127 * 255 == 32385 < cap16 == 32512
            (128, True),    # 128 * 255 == 32640 >= cap16: exact rerun
        ],
    )
    def test_int16_cap_boundary(self, length, past16):
        rng = np.random.default_rng(41)
        matrix = _match_matrix(255)  # byte tier unsupported
        gaps = GapPenalty.cudasw_default()
        query = random_protein(200, rng, id="q")
        db = _self_db(query, [length])
        profile = StripedProfile(query.codes, matrix)
        assert profile.profile8 is None and profile.cap16 == 32512
        (group,) = pack_database(db, 4)
        with obs.collect("counters") as instr:
            scores = score_packed_group_striped(profile, group, gaps)
        assert scores[group.indices[0]] == length * 255
        c = instr.counters.as_dict()
        if past16:
            assert c["engine.striped.exact_rerun_lanes"] == 1
        else:
            assert "engine.striped.exact_rerun_lanes" not in c

    def test_mixed_group_reruns_only_saturated_lanes(self):
        # One monster lane among small ones: the rerun subsets the
        # group, and every lane stays exact.
        rng = np.random.default_rng(42)
        matrix = _match_matrix(1)
        gaps = GapPenalty.from_open_extend(2, 1)
        query = random_protein(400, rng, id="q")
        lengths = [3, 253, 17, 400, 1]
        db = _self_db(query, lengths)
        profile = StripedProfile(query.codes, matrix)
        # Pack the ragged mix as ONE group on purpose: pack_database
        # would now gap-split a rectangle this degenerate (the tail-
        # efficiency floor), but the rerun-subsetting under test needs
        # saturated and exact lanes side by side in a single group.
        group = pack_group(db, np.argsort(db.lengths, kind="stable"))
        with obs.collect("counters") as instr:
            scores = score_packed_group_striped(profile, group, gaps)
        got = np.empty(len(db), dtype=np.int64)
        got[group.indices] = scores
        assert np.array_equal(got, np.asarray(lengths, dtype=np.int64))
        c = instr.counters.as_dict()
        assert c["engine.striped.saturated_lanes"] == 2  # 253 and 400
        assert c["engine.striped.overflow_reruns"] == 1

    def test_forced_rerun_matches_full_search_path(self):
        # End-to-end: the app-level striped search stays bit-exact when
        # lanes saturate and re-run.
        rng = np.random.default_rng(43)
        matrix = _match_matrix(1)
        gaps = GapPenalty.cudasw_default()
        query = random_protein(300, rng, id="q")
        db = _self_db(query, [50, 253, 260, 300, 2])
        engine = BatchedEngine(
            matrix, gaps, group_size=3, lane_engine="striped"
        )
        scores, _ = engine.search(query, db)
        assert np.array_equal(scores, _reference(query, db, matrix, gaps))


class TestExecutorParity:
    def test_pool_counters_match_serial(self, ragged_db):
        rng = np.random.default_rng(50)
        query = random_protein(60, rng, id="q")
        gaps = GapPenalty.cudasw_default()

        def counters(workers):
            engine = BatchedEngine(
                BLOSUM62,
                gaps,
                group_size=4,
                workers=workers,
                lane_engine="striped",
                fanout_min_cells=0,  # force the pool despite the size
            )
            with obs.collect("counters") as instr:
                scores, _ = engine.search(query, ragged_db)
            return scores, instr.counters.as_dict()

        serial_scores, serial = counters(1)
        fanned_scores, fanned = counters(2)
        assert np.array_equal(serial_scores, fanned_scores)
        # Fan-out bookkeeping differs; the sweep-local data-dependent
        # counts live in worker-process registries and are not
        # re-derivable parent-side.  Everything else must agree.
        for extra in (
            "engine.executor.worker_round_trips",
            "engine.executor.pool_fallbacks",
            "engine.executor.serial_groups",
            "engine.executor.pool_completed_groups",
            "engine.executor.tasks_submitted",
            "engine.striped.lazy_f_iterations",
            "engine.striped.f_columns_skipped",
        ):
            serial.pop(extra, None)
            fanned.pop(extra, None)
        assert serial == fanned
        assert serial["engine.striped.groups"] == 4

    def test_invalid_lane_engine_rejected(self, ragged_db):
        with pytest.raises(ValueError, match="lane_engine"):
            BatchedEngine(
                BLOSUM62, GapPenalty.cudasw_default(), lane_engine="simd"
            )
        rng = np.random.default_rng(51)
        query = random_protein(10, rng, id="q")
        profile = QueryProfile(query.codes, BLOSUM62)
        groups = pack_database(ragged_db, 4)
        with pytest.raises(ValueError, match="lane_engine"):
            run_groups(
                profile,
                groups,
                GapPenalty.cudasw_default(),
                workers=1,
                lane_engine="simd",
            )


class TestFanoutDemotion:
    def test_small_search_demotes_to_serial(self, ragged_db):
        rng = np.random.default_rng(60)
        query = random_protein(30, rng, id="q")
        engine = BatchedEngine(
            BLOSUM62, GapPenalty.cudasw_default(), group_size=4, workers=2
        )
        assert engine.fanout_min_cells == DEFAULT_FANOUT_MIN_CELLS
        with obs.collect("counters") as instr:
            _, report = engine.search(query, ragged_db)
        c = instr.counters.as_dict()
        assert c["engine.executor.fanout_demotions"] == 1
        assert c.get("engine.executor.worker_round_trips", 0) == 0
        # The report records the *requested* configuration.
        assert report.workers == 2

    def test_zero_threshold_disables_demotion(self, ragged_db):
        rng = np.random.default_rng(61)
        query = random_protein(30, rng, id="q")
        engine = BatchedEngine(
            BLOSUM62,
            GapPenalty.cudasw_default(),
            group_size=4,
            workers=2,
            fanout_min_cells=0,
        )
        with obs.collect("counters") as instr:
            engine.search(query, ragged_db)
        c = instr.counters.as_dict()
        assert "engine.executor.fanout_demotions" not in c
        assert c["engine.executor.worker_round_trips"] >= 1

    def test_explicit_fault_policy_is_never_demoted(self, ragged_db):
        # A caller that configured fault handling asked for the pool's
        # isolation semantics; the heuristic must not override that.
        rng = np.random.default_rng(62)
        query = random_protein(30, rng, id="q")
        engine = BatchedEngine(
            BLOSUM62,
            GapPenalty.cudasw_default(),
            group_size=4,
            workers=2,
            fault_policy=FaultPolicy(),
        )
        with obs.collect("counters") as instr:
            engine.search(query, ragged_db)
        c = instr.counters.as_dict()
        assert "engine.executor.fanout_demotions" not in c
        assert c["engine.executor.worker_round_trips"] >= 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="fanout_min_cells"):
            BatchedEngine(
                BLOSUM62, GapPenalty.cudasw_default(), fanout_min_cells=-1
            )


class TestAppIntegration:
    def test_striped_engine_end_to_end(self, ragged_db):
        rng = np.random.default_rng(70)
        query = random_protein(45, rng, id="q")
        app = CudaSW()
        base, _ = app.search(query, ragged_db, engine="batched")
        got, report = app.search(
            query, ragged_db, engine="striped", collect="counters"
        )
        assert np.array_equal(got.scores, base.scores)
        run = app.last_run_report
        assert run.meta["engine"] == "striped"
        assert run.engine["lane_engine"] == "striped"
        assert run.counters["engine.striped.groups"] >= 1

    def test_striped_checkpoint_resume(self, ragged_db, tmp_path):
        rng = np.random.default_rng(71)
        query = random_protein(25, rng, id="q")
        app = CudaSW()
        journal = tmp_path / "striped.journal"
        first, _ = app.search(
            query, ragged_db, engine="striped", checkpoint=journal
        )
        # Resume replays the completed journal rather than recomputing.
        resumed, _ = app.search(
            query, ragged_db, engine="striped",
            checkpoint=journal, resume=True,
        )
        assert np.array_equal(first.scores, resumed.scores)
        assert np.array_equal(
            first.scores,
            _reference(query, ragged_db, BLOSUM62,
                       GapPenalty.cudasw_default()),
        )
