"""Pre-packed ``.rdb`` store tests: round trip, refusal, fuzzing.

The contract under test (see :mod:`repro.engine.dbstore` and
``docs/db-format.md``): a store-backed search is **bit-identical** to
the FASTA path for every engine and worker count; every detectable
defect — bad magic, truncation, CRC mismatch, version skew, geometry
or fingerprint disagreement — is refused with
:class:`DatabaseFormatError`; and the single checksum-exempt region
(the 64-byte comment field) is the only place corruption may pass
undetected, where it must be *harmless*.  The bit-flip fuzzer walks
the whole file asserting exactly that trichotomy: refused, or
comment-region harmless — never silently wrong.
"""

import gzip
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import (
    BatchedEngine,
    CheckpointError,
    DatabaseFormatError,
    DatabaseStore,
    MemoryBudget,
    StoreGroupRef,
    build_store,
    build_store_from_fasta,
    open_database,
)
from repro.engine.dbstore import (
    COMMENT_BYTES,
    FORMAT_VERSION,
    MAGIC,
    database_fingerprint,
)
from repro.engine.executor import _init_worker, _score_chunk_task
from repro.sequence import Database, Sequence, write_fasta
from repro.sequence.fasta import iter_fasta_file, read_fasta_file

GP = GapPenalty.cudasw_default()
GROUP = 4

_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(61)
    lengths = np.concatenate([
        rng.integers(8, 60, size=18), rng.integers(120, 260, size=6),
    ])
    return Database.from_sequences(
        [Sequence.random(f"s{i:03d}", int(n), rng)
         for i, n in enumerate(lengths)]
    )


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(62)
    return Sequence.random("q", 36, rng)


@pytest.fixture(scope="module")
def store_path(db, tmp_path_factory):
    path = tmp_path_factory.mktemp("rdb") / "db.rdb"
    build_store(db, path, group_size=GROUP, comment="test store")
    return path


@pytest.fixture(scope="module")
def store(store_path):
    opened = open_database(store_path, verify="deep")
    assert isinstance(opened, DatabaseStore)
    return opened


@pytest.fixture(scope="module")
def reference(db, query):
    scores, _ = BatchedEngine(BLOSUM62, GP, group_size=GROUP).search(
        query, db
    )
    return scores


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_round_trip(db, store):
    assert store.fingerprint == database_fingerprint(db)
    assert len(store) == len(db)
    assert store.group_size == GROUP
    assert store.comment == "test store"
    view = store.database
    assert np.array_equal(view.lengths, db.lengths)
    assert np.array_equal(view._codes, db._codes)
    assert [view.id_of(i) for i in range(len(view))] == [
        db.id_of(i) for i in range(len(db))
    ]
    assert np.array_equal(
        store.sort_order, np.argsort(db.lengths, kind="stable")
    )


def test_build_refuses_bad_inputs(db, tmp_path):
    with pytest.raises(ValueError, match="group size"):
        build_store(db, tmp_path / "x.rdb", group_size=0)
    lengths_only = Database.from_lengths(db.lengths, db.alphabet)
    with pytest.raises(ValueError, match="lengths-only"):
        build_store(lengths_only, tmp_path / "x.rdb")


@pytest.mark.parametrize("lane", ["gotoh", "striped", "strips", "hetero"])
@pytest.mark.parametrize("workers", [1, 2])
def test_store_scores_bit_identical(
    db, query, store, reference, lane, workers
):
    engine = BatchedEngine(
        BLOSUM62, GP, group_size=GROUP, lane_engine=lane,
        workers=workers, fanout_min_cells=0,
    )
    base, _ = engine.search(query, db)
    from_store, _ = engine.search(query, store)
    assert np.array_equal(base, reference)
    assert np.array_equal(from_store, reference)


def test_worker_materializes_group_refs(db, query, store):
    """The pool payload path, in process: a worker holding only the
    store path rebuilds identical groups from index references."""
    from repro.engine.pack import pack_database

    groups = pack_database(db, GROUP)
    _init_worker(query.codes, BLOSUM62, GP, None, "gotoh", "off",
                 str(store.path), store.fingerprint)
    by_value, _ = _score_chunk_task([(i, g) for i, g in enumerate(groups)])
    by_ref, _ = _score_chunk_task(
        [(i, StoreGroupRef.of(g)) for i, g in enumerate(groups)]
    )
    assert all(np.array_equal(a, b) for a, b in zip(by_value, by_ref))


def test_worker_refuses_fingerprint_skew(query, store):
    with pytest.raises(RuntimeError, match="changed while the search"):
        _init_worker(query.codes, BLOSUM62, GP, None, "gotoh", "off",
                     str(store.path), "0" * 64)


# ----------------------------------------------------------------------
# Refusals
# ----------------------------------------------------------------------
def _open_deep(path):
    return open_database(path, verify="deep")


def test_refuses_missing_file(tmp_path):
    with pytest.raises(DatabaseFormatError, match="cannot read"):
        _open_deep(tmp_path / "nope.rdb")


def test_refuses_bad_magic(store_path, tmp_path):
    data = bytearray(store_path.read_bytes())
    data[:4] = b"XXXX"
    bad = tmp_path / "magic.rdb"
    bad.write_bytes(bytes(data))
    with pytest.raises(DatabaseFormatError, match="bad magic"):
        _open_deep(bad)


@pytest.mark.parametrize("drop", [1, 7, 4096])
def test_refuses_truncation(store_path, tmp_path, drop):
    data = store_path.read_bytes()
    bad = tmp_path / f"trunc{drop}.rdb"
    bad.write_bytes(data[: len(data) - drop])
    with pytest.raises(DatabaseFormatError):
        _open_deep(bad)
    # fast tier must refuse truncation too: the section table no longer
    # matches the file size.
    with pytest.raises(DatabaseFormatError):
        open_database(bad, verify="fast")


def _header_span(data: bytes) -> tuple[int, int]:
    """(start, end) byte offsets of the header JSON in the file."""
    start = len(MAGIC) + COMMENT_BYTES + _LEN.size
    (header_len,) = _LEN.unpack_from(data, len(MAGIC) + COMMENT_BYTES)
    return start, start + header_len


def _reframe(src: Path, dst: Path, mutate) -> Path:
    """Rewrite a store with a mutated header JSON, CRC re-signed.

    This forges a store whose header frame is *internally valid* —
    correct length, correct CRC — so the open path must refuse on the
    header's content, not its framing.
    """
    data = src.read_bytes()
    start, end = _header_span(data)
    header = json.loads(data[start:end].decode("ascii"))
    mutate(header)
    new = json.dumps(header, separators=(",", ":")).encode("ascii")
    out = (
        data[: len(MAGIC) + COMMENT_BYTES]
        + _LEN.pack(len(new)) + new + _CRC.pack(zlib.crc32(new))
        + data[end + _CRC.size :]
    )
    dst.write_bytes(out)
    return dst


def test_refuses_version_skew(store_path, tmp_path):
    def bump(h):
        h["version"] = FORMAT_VERSION + 1

    bad = _reframe(store_path, tmp_path / "skew.rdb", bump)
    with pytest.raises(DatabaseFormatError, match="version skew"):
        open_database(bad, verify="fast")


def test_refuses_fingerprint_tamper(store_path, tmp_path):
    def swap(h):
        h["fingerprint"] = "0" * 64

    bad = _reframe(store_path, tmp_path / "fp.rdb", swap)
    # Fast tier cannot know (fingerprint recompute is O(database), the
    # fast tier's explicit non-goal) ...
    opened = open_database(bad, verify="fast")
    assert isinstance(opened, DatabaseStore)
    # ... deep tier must catch it.
    with pytest.raises(DatabaseFormatError, match="fingerprint"):
        _open_deep(bad)


def test_refuses_geometry_tamper(store_path, tmp_path):
    def shrink(h):
        h["group_size"] = GROUP + 1

    bad = _reframe(store_path, tmp_path / "geom.rdb", shrink)
    with pytest.raises(DatabaseFormatError, match="geometry"):
        open_database(bad, verify="fast")


def test_refuses_index_crc_flip(store_path, tmp_path):
    data = bytearray(store_path.read_bytes())
    _, header_end = _header_span(bytes(data))
    # First byte of the first data section (lengths).
    pos = header_end + _CRC.size
    data[pos] ^= 0xFF
    bad = tmp_path / "crc.rdb"
    bad.write_bytes(bytes(data))
    with pytest.raises(DatabaseFormatError, match="CRC"):
        open_database(bad, verify="fast")


def test_refuses_codes_flip_at_deep_tier(store_path, tmp_path):
    data = bytearray(store_path.read_bytes())
    data[-1] ^= 0x01  # codes is the last section; last byte is residue
    bad = tmp_path / "codes.rdb"
    bad.write_bytes(bytes(data))
    with pytest.raises(DatabaseFormatError, match="residue blob"):
        _open_deep(bad)


# ----------------------------------------------------------------------
# Satellite 1: the bit-flip corruption fuzzer
# ----------------------------------------------------------------------
def test_bit_flip_fuzzer(db, query, store_path, reference, tmp_path):
    """Flip one byte at sampled positions across every region of the
    file; each deep-tier open must either refuse or — comment bytes
    only — produce bit-identical scores.  Never silently wrong."""
    data = store_path.read_bytes()
    comment_lo, comment_hi = len(MAGIC), len(MAGIC) + COMMENT_BYTES
    # Every byte of the preamble (magic + comment + length field +
    # start of the header), then evenly sampled positions to EOF so
    # every section — index and residue blob alike — is hit.
    positions = sorted(set(
        list(range(0, comment_hi + _LEN.size + 8))
        + [int(p) for p in np.linspace(0, len(data) - 1, num=96)]
    ))
    engine = BatchedEngine(BLOSUM62, GP, group_size=GROUP)
    target = tmp_path / "fuzz.rdb"
    harmless = refused = 0
    for pos in positions:
        corrupt = bytearray(data)
        corrupt[pos] ^= 0x5A
        target.write_bytes(bytes(corrupt))
        try:
            opened = open_database(target, verify="deep")
        except DatabaseFormatError:
            refused += 1
            continue
        assert isinstance(opened, DatabaseStore)
        scores, _ = engine.search(query, opened)
        assert np.array_equal(scores, reference), (
            f"byte flip at {pos} opened cleanly but changed scores"
        )
        assert comment_lo <= pos < comment_hi, (
            f"byte flip at {pos} outside the comment field passed deep "
            "verification"
        )
        harmless += 1
        del opened  # release the memmap before the next overwrite
    # The comment field must be tolerated (it is checksum-exempt by
    # design), and everything else must have been refused.
    assert harmless == comment_hi - comment_lo
    assert refused == len(positions) - harmless


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
def test_fallback_to_fasta(db, store_path, tmp_path):
    fasta = tmp_path / "db.fasta"
    write_fasta(list(db), fasta)
    data = store_path.read_bytes()
    bad = tmp_path / "bad.rdb"
    bad.write_bytes(data[:100])
    with obs.collect("counters") as instr:
        with pytest.warns(UserWarning, match="falling back"):
            degraded = open_database(bad, fallback="fasta", fasta=fasta)
    counters = instr.counters.as_dict()
    assert counters["engine.dbstore.refusals"] == 1
    assert counters["engine.dbstore.fallbacks"] == 1
    assert isinstance(degraded, Database)
    assert not isinstance(degraded, DatabaseStore)
    assert np.array_equal(degraded.lengths, db.lengths)
    assert np.array_equal(degraded._codes, db._codes)


def test_fallback_requires_fasta_path(store_path):
    with pytest.raises(ValueError, match="requires the fasta"):
        open_database(store_path, fallback="fasta")
    with pytest.raises(ValueError, match="verify must be"):
        open_database(store_path, verify="paranoid")


# ----------------------------------------------------------------------
# Atomic builds
# ----------------------------------------------------------------------
def test_failed_build_leaves_nothing(db, tmp_path, monkeypatch):
    import repro.engine.dbstore as dbstore

    def explode(fh, payload):
        raise OSError("disk on fire")

    monkeypatch.setattr(dbstore, "_write_section", explode)
    target = tmp_path / "never.rdb"
    with pytest.raises(OSError, match="disk on fire"):
        build_store(db, target)
    assert not target.exists()
    assert list(tmp_path.iterdir()) == []


def test_rebuild_replaces_atomically(db, tmp_path):
    target = tmp_path / "twice.rdb"
    first = build_store(db, target, comment="one")
    second = build_store(db, target, comment="two")
    assert first.fingerprint == second.fingerprint
    opened = open_database(target, verify="deep")
    assert isinstance(opened, DatabaseStore)
    assert opened.comment == "two"


# ----------------------------------------------------------------------
# Checkpoint interplay
# ----------------------------------------------------------------------
def test_checkpoint_refuses_rebuilt_store(db, query, store, tmp_path):
    """A journal written against one store must refuse to resume
    against a rebuilt store with different content — even when every
    length (and therefore the whole geometry) is unchanged."""
    journal = tmp_path / "scan.wal"
    engine = BatchedEngine(BLOSUM62, GP, group_size=GROUP)
    engine.search(query, store, checkpoint=journal)

    rng = np.random.default_rng(63)
    mutated = [
        Sequence.random(db.id_of(i), int(db.lengths[i]), rng)
        for i in range(len(db))
    ]
    other_path = tmp_path / "other.rdb"
    build_store(Database.from_sequences(mutated), other_path,
                group_size=GROUP)
    other = open_database(other_path)
    assert isinstance(other, DatabaseStore)
    assert np.array_equal(other.lengths, store.lengths)
    with pytest.raises(CheckpointError):
        engine.search(query, other, checkpoint=journal, resume=True)


def test_store_vs_fasta_checkpoints_disagree(db, query, store, tmp_path):
    """Conservative by design: a journal from a plain-FASTA search does
    not resume against the same content opened as a store."""
    journal = tmp_path / "fasta.wal"
    engine = BatchedEngine(BLOSUM62, GP, group_size=GROUP)
    engine.search(query, db, checkpoint=journal)
    with pytest.raises(CheckpointError):
        engine.search(query, store, checkpoint=journal, resume=True)


# ----------------------------------------------------------------------
# Geometry reuse
# ----------------------------------------------------------------------
def test_geometry_reuse_counters(db, query, store):
    with obs.collect("counters") as instr:
        BatchedEngine(BLOSUM62, GP, group_size=GROUP).search(query, store)
    assert instr.counters.as_dict()["engine.dbstore.geometry_reused"] == 1

    with obs.collect("counters") as instr:
        BatchedEngine(BLOSUM62, GP, group_size=GROUP + 1).search(
            query, store
        )
    assert (
        instr.counters.as_dict()["engine.dbstore.geometry_replanned"] == 1
    )

    with obs.collect("counters") as instr:
        BatchedEngine(
            BLOSUM62, GP, group_size=GROUP, lane_engine="hetero"
        ).search(query, store)
    assert (
        instr.counters.as_dict()["engine.dbstore.geometry_replanned"] == 1
    )


def test_stored_plan_with_budget_matches_packing(db, query, store):
    """A memory budget applied to the stored plan is bit-equal to
    planning with the budget from scratch — groups and scores."""
    budget = MemoryBudget(max_group_bytes=200_000)
    plain = BatchedEngine(
        BLOSUM62, GP, group_size=GROUP, memory_budget=budget
    )
    base, base_report = plain.search(query, db)
    from_store, store_report = plain.search(query, store)
    assert np.array_equal(base, from_store)
    assert base_report.n_groups == store_report.n_groups
    assert base_report.group_size == store_report.group_size


def test_plan_for_validates_kind(store):
    with pytest.raises(ValueError, match="plan kind"):
        store.plan_for("diagonal")


# ----------------------------------------------------------------------
# Satellite 6: threshold tuner reads the store index
# ----------------------------------------------------------------------
def test_tuner_accepts_store(db, store):
    from repro.app.threshold import tune_split_threshold

    direct = tune_split_threshold(db.lengths, group_size=GROUP)
    via_store = tune_split_threshold(store, group_size=GROUP)
    assert via_store == direct


# ----------------------------------------------------------------------
# Satellite 2: streaming FASTA + Database.from_stream
# ----------------------------------------------------------------------
def test_from_stream_matches_from_sequences(db, tmp_path):
    fasta = tmp_path / "db.fasta"
    write_fasta(list(db), fasta)
    records = read_fasta_file(fasta)
    streamed = Database.from_stream(iter_fasta_file(fasta), name=db.name)
    eager = Database.from_sequences(records, name=db.name)
    assert np.array_equal(streamed.lengths, eager.lengths)
    assert np.array_equal(streamed._codes, eager._codes)
    assert [streamed.id_of(i) for i in range(len(streamed))] == [
        eager.id_of(i) for i in range(len(eager))
    ]
    with pytest.raises(ValueError, match="zero sequences"):
        Database.from_stream(iter(()))


def test_build_from_gzipped_fasta(db, store, tmp_path):
    fasta = tmp_path / "db.fasta"
    write_fasta(list(db), fasta)
    gz = tmp_path / "db.fasta.gz"
    gz.write_bytes(gzip.compress(fasta.read_bytes()))
    info = build_store_from_fasta(gz, tmp_path / "gz.rdb",
                                  group_size=GROUP)
    assert info.fingerprint == store.fingerprint
    assert info.sequences == len(db)


def test_from_stream_small_chunks(db):
    """Chunked accumulation concatenates correctly across boundaries."""
    streamed = Database.from_stream(iter(list(db)), chunk_residues=64)
    assert np.array_equal(streamed._codes, db._codes)
    assert np.array_equal(streamed.lengths, db.lengths)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_open_and_build_instrumentation(db, tmp_path):
    with obs.collect("full") as instr:
        build_store(db, tmp_path / "obs.rdb", group_size=GROUP)
        open_database(tmp_path / "obs.rdb", verify="deep")
    counters = instr.counters.as_dict()
    assert counters["engine.dbstore.builds"] == 1
    assert counters["engine.dbstore.opens"] == 1
    assert counters["engine.dbstore.verify_deep"] == 1
    assert counters["engine.dbstore.open_mmap_bytes"] == db.total_residues
    spans = {
        span.name
        for root in instr.tracer.roots
        for _path, span in root.walk()
    }
    assert {"db_build", "db_open", "db_verify"} <= spans
    histograms = instr.histograms.as_dict()
    assert histograms["engine.dbstore.build_seconds"]["count"] == 1
    assert histograms["engine.dbstore.open_seconds"]["count"] == 1
