"""Degradation-path tests for the fault-tolerant executor.

Every fault here is *injected deterministically* inside worker
processes via :class:`InjectionPlan` — crash on the Nth task, hang on a
chosen group, return garbage for a chosen group — so the tests assert
exact recovery behavior without flaky timing dependence.  Injection
never applies to the serial path, which is the recovery mechanism under
test: whatever the pool does, scores must come out bit-identical to the
serial reference.
"""

import random
import time

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import (
    BatchedEngine,
    FaultPolicy,
    InjectionPlan,
    SearchDeadlineExceeded,
    pack_database,
    run_groups,
)
from repro.engine.faults import DeadlineClock
from repro.sequence import Database, QueryProfile, Sequence, random_protein

GP = GapPenalty.cudasw_default()

#: Injected hangs sleep this long: far beyond any policy timeout used
#: here, short enough that an abandoned worker exits on its own even if
#: termination were to fail.
HANG = 20.0


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(11)
    return Database.from_sequences(
        [Sequence.random(f"s{i}", int(n), rng)
         for i, n in enumerate(rng.integers(5, 100, size=24))]
    )


@pytest.fixture(scope="module")
def query():
    rng = np.random.default_rng(12)
    return random_protein(36, rng, id="q")


@pytest.fixture(scope="module")
def reference(db, query):
    scores, _ = BatchedEngine(BLOSUM62, GP, group_size=4, workers=1).search(
        query, db
    )
    return scores


def degraded_search(db, query, policy, workers=2):
    with obs.collect("counters") as instr:
        scores, _ = BatchedEngine(
            BLOSUM62, GP, group_size=4, workers=workers, fault_policy=policy
        ).search(query, db)
    return scores, instr.counters.as_dict()


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        for kwargs in (
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"deadline": 0.0},
            {"backoff": -0.1},
            {"backoff_multiplier": 0.5},
            {"jitter": -0.2},
            {"chunksize": 0},
        ):
            with pytest.raises(ValueError):
                FaultPolicy(**kwargs)
        with pytest.raises(ValueError):
            InjectionPlan(crash_after=-1)
        with pytest.raises(ValueError):
            InjectionPlan(hang_seconds=0.0)

    def test_retry_delay_deterministic_and_growing(self):
        policy = FaultPolicy(backoff=0.1, backoff_multiplier=2.0,
                             jitter=0.5, seed=7)
        a = [policy.retry_delay(k, random.Random(7)) for k in (2, 3, 4)]
        b = [policy.retry_delay(k, random.Random(7)) for k in (2, 3, 4)]
        assert a == b  # seeded jitter is reproducible
        assert a[0] < a[1] < a[2]  # exponential growth survives jitter
        assert policy.retry_delay(1, random.Random(7)) == 0.0

    def test_no_jitter_is_exact(self):
        policy = FaultPolicy(backoff=0.2, backoff_multiplier=3.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.retry_delay(2, rng) == pytest.approx(0.2)
        assert policy.retry_delay(3, rng) == pytest.approx(0.6)


class TestDeadlineClock:
    def test_no_deadline_never_expires(self):
        clock = DeadlineClock(None)
        assert clock.remaining() is None
        assert not clock.expired()

    def test_expiry(self):
        clock = DeadlineClock(1e-6)
        time.sleep(0.01)
        assert clock.expired()
        assert clock.remaining() < 0
        assert clock.elapsed > 0


class TestWorkerCrash:
    def test_crash_keeps_completed_groups_and_recovers(
        self, db, query, reference
    ):
        """A worker death mid-run loses only unfinished groups: obs
        counters prove completed pool scores were kept and exactly the
        remainder was recomputed serially."""
        policy = FaultPolicy(
            chunksize=1, inject=InjectionPlan(crash_after=2)
        )
        scores, c = degraded_search(db, query, policy)
        assert np.array_equal(scores, reference)
        assert c["engine.executor.worker_crashes"] == 1
        n = c["engine.executor.groups_dispatched"]
        completed = c.get("engine.executor.pool_completed_groups", 0)
        recomputed = c["engine.executor.serial_retry_groups"]
        assert completed + recomputed == n
        assert recomputed < n  # some pool work really was recovered

    def test_crash_on_specific_group(self, db, query, reference):
        policy = FaultPolicy(
            chunksize=1, retries=0, inject=InjectionPlan(crash_groups=(0,))
        )
        scores, c = degraded_search(db, query, policy)
        assert np.array_equal(scores, reference)
        assert c["engine.executor.worker_crashes"] >= 1


class TestTimeoutRetrySerial:
    def test_hang_times_out_retries_then_serial(self, db, query, reference):
        """A group that hangs on every pool attempt exhausts its retries
        and completes through the injection-free serial fallback."""
        policy = FaultPolicy(
            chunksize=1, timeout=0.25, retries=1, backoff=0.01,
            inject=InjectionPlan(hang_groups=(2,), hang_seconds=HANG),
        )
        t0 = time.monotonic()
        scores, c = degraded_search(db, query, policy)
        elapsed = time.monotonic() - t0
        assert np.array_equal(scores, reference)
        # Timed out at least twice (first attempt + its retry), then
        # went serial; well before the injected hang could finish.
        assert c["engine.executor.timeouts"] >= 2
        assert c["engine.executor.retries"] >= 1
        assert c["engine.executor.tasks_exhausted"] >= 1
        assert c["engine.executor.serial_retry_groups"] >= 1
        assert elapsed < HANG / 2

    def test_garbage_result_retried_then_recovered(self, db, query, reference):
        policy = FaultPolicy(
            chunksize=1, retries=1, backoff=0.01,
            inject=InjectionPlan(garbage_groups=(1, 4)),
        )
        scores, c = degraded_search(db, query, policy)
        assert np.array_equal(scores, reference)
        # Each garbage group failed twice in the pool (initial + retry).
        assert c["engine.executor.garbage_results"] == 4
        assert c["engine.executor.serial_retry_groups"] == 2


class TestDeadline:
    def test_pool_deadline_raises_typed_with_partials(self, db, query):
        """All workers wedged: the deadline fires, the error is typed
        and carries partial results, and the search never hangs."""
        n_groups = len(pack_database(db, 4))
        policy = FaultPolicy(
            chunksize=1, deadline=0.5,
            inject=InjectionPlan(
                hang_groups=tuple(range(n_groups)), hang_seconds=HANG
            ),
        )
        engine = BatchedEngine(
            BLOSUM62, GP, group_size=4, workers=2, fault_policy=policy
        )
        t0 = time.monotonic()
        with pytest.raises(SearchDeadlineExceeded) as excinfo:
            engine.search(query, db)
        elapsed = time.monotonic() - t0
        exc = excinfo.value
        assert elapsed < 5.0  # never hangs anywhere near the 20s sleeps
        assert exc.deadline == 0.5
        assert exc.elapsed >= 0.5
        assert set(exc.partial) | set(exc.pending) == set(range(n_groups))
        # BatchedEngine scattered what finished into database order.
        assert exc.partial_scores is not None
        assert exc.completed_mask is not None
        assert exc.completed_mask.shape == (len(db),)
        assert (exc.partial_scores[~exc.completed_mask] == -1).all()

    def test_serial_deadline_carries_partials(self, db, query, reference):
        """The serial path honors the deadline between groups."""
        groups = pack_database(db, 4)
        profile = QueryProfile(
            np.asarray(query.codes), BLOSUM62
        )
        clockless = FaultPolicy(deadline=1e-9)
        with pytest.raises(SearchDeadlineExceeded) as excinfo:
            run_groups(profile, groups, GP, workers=1, policy=clockless)
        exc = excinfo.value
        assert exc.pending  # something was left undone
        for gi, lane_scores in exc.partial.items():
            assert np.array_equal(
                lane_scores, reference[groups[gi].indices]
            )

    def test_deadline_counter(self, db, query):
        policy = FaultPolicy(deadline=1e-9)
        with obs.collect("counters") as instr:
            with pytest.raises(SearchDeadlineExceeded):
                BatchedEngine(
                    BLOSUM62, GP, group_size=4, workers=1,
                    fault_policy=policy,
                ).search(query, db)
        c = instr.counters.as_dict()
        assert c["engine.executor.deadline_exceeded"] == 1


class TestCudaSWIntegration:
    def test_acceptance_crash_scenario(self, db, query):
        """The ISSUE acceptance criterion: kill one worker after N
        groups; search(workers=2) returns scores bit-identical to the
        serial path, recomputes only the unfinished groups, and obs
        counters prove it."""
        from repro.app import CudaSW

        app = CudaSW()
        serial_result, _ = app.search(query, db, workers=1, group_size=4)
        # 6 groups across 2 workers: each worker completes one task,
        # then dies on its second — the crash is guaranteed to fire
        # while completed results exist to recover.
        policy = FaultPolicy(chunksize=1, inject=InjectionPlan(crash_after=1))
        with obs.collect("counters") as instr:
            result, _ = app.search(
                query, db, workers=2, group_size=4, fault_policy=policy
            )
        assert np.array_equal(result.scores, serial_result.scores)
        c = instr.counters.as_dict()
        assert c["engine.executor.worker_crashes"] == 1
        assert (
            c.get("engine.executor.pool_completed_groups", 0)
            + c["engine.executor.serial_retry_groups"]
            == c["engine.executor.groups_dispatched"]
        )

    def test_fault_policy_rejected_for_other_engines(self, db, query):
        from repro.app import CudaSW

        app = CudaSW()
        with pytest.raises(ValueError, match="batched"):
            app.search(
                query, db, engine="scalar", fault_policy=FaultPolicy()
            )
        with pytest.raises(ValueError, match="batched"):
            app.search(
                query, db, simulate_kernels=True, fault_policy=FaultPolicy()
            )

    def test_search_batch_passthrough(self, db, query):
        from repro.app import CudaSW
        from repro.app.batch import search_batch

        rng = np.random.default_rng(21)
        queries = [query, random_protein(25, rng, id="q2")]
        app = CudaSW()
        policy = FaultPolicy(chunksize=1, retries=1, backoff=0.01,
                             inject=InjectionPlan(garbage_groups=(0,)))
        results, _ = search_batch(
            app, queries, db, workers=2, fault_policy=policy
        )
        baseline, _ = search_batch(app, queries, db, workers=1)
        for got, want in zip(results, baseline):
            assert np.array_equal(got.scores, want.scores)

    def test_default_policy_unchanged_behavior(self, db, query, reference):
        """No policy given: the engine behaves exactly as before —
        parallel scores match serial, nothing raises."""
        scores, _ = BatchedEngine(
            BLOSUM62, GP, group_size=4, workers=2
        ).search(query, db)
        assert np.array_equal(scores, reference)
