"""Score-dtype stability: results past the int16 range stay exact.

The paper's kernels keep scores in registers wide enough for the worst
case; a narrow accumulator silently wraps on long high-identity
alignments.  These tests pin the batched engine's dtype policy
(`_working_dtype`) and prove, end to end, that a score which cannot fit
in int16 comes back exact — both against the closed-form perfect-match
score and against the independent antidiagonal aligner.
"""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import BatchedEngine
from repro.engine.lanes import _working_dtype
from repro.sequence import Database, Sequence
from repro.sw.antidiagonal import sw_score_antidiagonal

GP = GapPenalty.cudasw_default()

#: BLOSUM62 W/W similarity — the matrix's largest diagonal entry.
W_SELF = 11

INT16_MAX = 2**15 - 1


class TestWorkingDtype:
    def test_overflowing_int16_geometry_selects_int32(self):
        # 3200 residues of W against itself: true score 35200 > int16.
        dtype = _working_dtype(3200, 3200, W_SELF, GP)
        assert dtype is np.int32

    def test_adversarial_penalties_select_int64(self):
        # Penalties near the validation cap blow the int32 bound.
        huge = GapPenalty(rho=2**20, sigma=2**20)
        assert _working_dtype(3200, 3200, W_SELF, huge) is np.int64


class TestOverflowEquivalence:
    @pytest.fixture(scope="class")
    def poly_w(self):
        # Long perfect self-match whose score provably exceeds int16:
        # 3200 * 11 = 35200.
        return "W" * 3200

    def test_score_exceeds_int16_and_matches_closed_form(self, poly_w):
        query = Sequence.from_text("q", poly_w)
        db = Database.from_sequences([Sequence.from_text("d", poly_w)])
        engine = BatchedEngine(BLOSUM62, GP)
        scores, _ = engine.search(query, db)
        expected = len(poly_w) * W_SELF
        assert expected > INT16_MAX  # the test is vacuous otherwise
        assert scores.dtype == np.int64
        assert int(scores[0]) == expected

    def test_matches_antidiagonal_aligner_past_int16(self, poly_w):
        # Independent implementation, same pair: any wraparound in the
        # sweep's working buffers would break this equality.
        query = Sequence.from_text("q", poly_w)
        dseq = Sequence.from_text("d", poly_w)
        db = Database.from_sequences([dseq])
        engine = BatchedEngine(BLOSUM62, GP)
        scores, _ = engine.search(query, db)
        reference = sw_score_antidiagonal(query, dseq, BLOSUM62, GP)
        assert reference > INT16_MAX
        assert int(scores[0]) == reference

    def test_mixed_group_keeps_short_lanes_exact(self, poly_w):
        # The overflowing lane shares a group with ordinary sequences;
        # widening must not disturb their scores.
        rng = np.random.default_rng(7)
        query = Sequence.from_text("q", poly_w)
        short = Sequence.random("s", 40, rng)
        db = Database.from_sequences(
            [Sequence.from_text("d", poly_w), short]
        )
        engine = BatchedEngine(BLOSUM62, GP, group_size=2)
        scores, _ = engine.search(query, db)
        assert int(scores[0]) == len(poly_w) * W_SELF
        assert int(scores[1]) == sw_score_antidiagonal(
            query, short, BLOSUM62, GP
        )
