"""Write-ahead journal tests: replay, refusal and torn-tail tolerance.

The failure contract under test (see :mod:`repro.engine.checkpoint`):
a *torn tail* — the file ending mid-record, the expected artifact of
SIGKILL during an append — is dropped with a warning and its group
recomputed; every other defect (bad magic, truncated header, a CRC
failure in a *complete* record, fingerprint/geometry/content-hash
mismatch) refuses cleanly with :class:`CheckpointError` so a wrong
journal can never contaminate scores.
"""

import numpy as np
import pytest

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import (
    BatchedEngine,
    CheckpointError,
    CheckpointJournal,
    atomic_write_text,
    pack_database,
    search_fingerprint,
)
from repro.engine.checkpoint import MAGIC, group_content_hash
from repro.sequence import Database, Sequence, random_protein

GP = GapPenalty.cudasw_default()


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(31)
    return Database.from_sequences(
        [Sequence.random(f"s{i}", int(n), rng)
         for i, n in enumerate(rng.integers(8, 120, size=20))]
    )


@pytest.fixture(scope="module")
def query():
    return random_protein(40, np.random.default_rng(32), id="q")


@pytest.fixture(scope="module")
def reference(db, query):
    scores, _ = BatchedEngine(BLOSUM62, GP, group_size=4).search(query, db)
    return scores


def checkpointed_search(db, query, path, *, resume=False, gaps=GP,
                        group_size=4, workers=1):
    with obs.collect("counters") as instr:
        scores, _ = BatchedEngine(
            BLOSUM62, gaps, group_size=group_size, workers=workers
        ).search(query, db, checkpoint=path, resume=resume)
    return scores, instr.counters.as_dict()


def truncate_to_records(path, keep):
    """Rewrite the journal keeping the header plus ``keep`` group records."""
    import struct

    buf = path.read_bytes()
    offset = len(MAGIC)
    frame = struct.Struct("<BI")
    for _ in range(1 + keep):  # header record + kept group records
        _, length = frame.unpack_from(buf, offset)
        offset += frame.size + length + 4
    path.write_bytes(buf[:offset])


class TestJournalRoundTrip:
    def test_fresh_run_journals_every_group(self, db, query, reference,
                                            tmp_path):
        path = tmp_path / "run.wal"
        scores, c = checkpointed_search(db, query, path)
        assert np.array_equal(scores, reference)
        n_groups = len(pack_database(db, 4))
        assert c["engine.checkpoint.groups_journaled"] == n_groups
        assert c["engine.checkpoint.groups_recomputed"] == n_groups
        assert path.exists() and path.stat().st_size > len(MAGIC)

    def test_full_replay_recomputes_nothing(self, db, query, reference,
                                            tmp_path):
        path = tmp_path / "run.wal"
        checkpointed_search(db, query, path)
        scores, c = checkpointed_search(db, query, path, resume=True)
        assert np.array_equal(scores, reference)
        n_groups = len(pack_database(db, 4))
        assert c["engine.checkpoint.groups_replayed"] == n_groups
        assert c.get("engine.checkpoint.groups_recomputed", 0) == 0

    def test_partial_replay_recomputes_exact_remainder(
        self, db, query, reference, tmp_path
    ):
        path = tmp_path / "run.wal"
        checkpointed_search(db, query, path)
        truncate_to_records(path, keep=2)
        scores, c = checkpointed_search(db, query, path, resume=True)
        assert np.array_equal(scores, reference)
        n_groups = len(pack_database(db, 4))
        assert c["engine.checkpoint.groups_replayed"] == 2
        assert c["engine.checkpoint.groups_recomputed"] == n_groups - 2
        # The resumed journal is complete again: a second resume
        # replays everything.
        _, c2 = checkpointed_search(db, query, path, resume=True)
        assert c2["engine.checkpoint.groups_replayed"] == n_groups

    def test_resume_on_missing_file_starts_fresh(self, db, query, reference,
                                                 tmp_path):
        path = tmp_path / "never-written.wal"
        scores, c = checkpointed_search(db, query, path, resume=True)
        assert np.array_equal(scores, reference)
        assert c.get("engine.checkpoint.groups_replayed", 0) == 0

    def test_without_resume_truncates_old_journal(self, db, query, tmp_path):
        path = tmp_path / "run.wal"
        checkpointed_search(db, query, path)
        size_full = path.stat().st_size
        _, c = checkpointed_search(db, query, path)  # resume=False
        assert c.get("engine.checkpoint.groups_replayed", 0) == 0
        assert path.stat().st_size == size_full  # rewritten, not appended

    def test_parallel_run_journals_and_replays(self, db, query, reference,
                                               tmp_path):
        path = tmp_path / "pool.wal"
        scores, c = checkpointed_search(db, query, path, workers=2)
        assert np.array_equal(scores, reference)
        n_groups = len(pack_database(db, 4))
        assert c["engine.checkpoint.groups_journaled"] == n_groups
        _, c2 = checkpointed_search(db, query, path, resume=True, workers=2)
        assert c2["engine.checkpoint.groups_replayed"] == n_groups


class TestTornTail:
    def test_torn_tail_dropped_with_warning_and_counter(
        self, db, query, reference, tmp_path
    ):
        path = tmp_path / "torn.wal"
        checkpointed_search(db, query, path)
        buf = path.read_bytes()
        path.write_bytes(buf[:-7])  # shear the last record mid-frame
        with pytest.warns(UserWarning, match="torn tail"):
            scores, c = checkpointed_search(db, query, path, resume=True)
        assert np.array_equal(scores, reference)
        assert c["engine.checkpoint.torn_records_dropped"] == 1
        n_groups = len(pack_database(db, 4))
        assert c["engine.checkpoint.groups_replayed"] == n_groups - 1
        assert c["engine.checkpoint.groups_recomputed"] == 1


class TestRefusal:
    def fingerprint(self, db, query, matrix=BLOSUM62, group_size=4):
        return search_fingerprint(
            np.asarray(query.codes), matrix, GP, group_size, db
        )

    def test_bad_magic_refused(self, db, query, tmp_path):
        path = tmp_path / "not-a.wal"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(CheckpointError, match="bad magic"):
            CheckpointJournal.resume(
                path, self.fingerprint(db, query), pack_database(db, 4)
            )

    def test_truncated_header_refused(self, db, query, tmp_path):
        path = tmp_path / "stub.wal"
        path.write_bytes(MAGIC + b"\x01\x40")  # frame sheared mid-length
        with pytest.raises(CheckpointError, match="truncated journal header"):
            CheckpointJournal.resume(
                path, self.fingerprint(db, query), pack_database(db, 4)
            )

    def test_crc_corruption_in_complete_record_refused(self, db, query,
                                                       tmp_path):
        path = tmp_path / "bitrot.wal"
        checkpointed_search(db, query, path)
        buf = bytearray(path.read_bytes())
        # Flip one payload byte of a middle record: the record is still
        # complete (framing intact) so this is corruption, not a torn
        # tail, and must be refused.
        buf[len(buf) // 2] ^= 0xFF
        path.write_bytes(bytes(buf))
        with pytest.raises(CheckpointError, match="CRC"):
            checkpointed_search(db, query, path, resume=True)

    def test_fingerprint_mismatch_refused(self, db, query, tmp_path):
        path = tmp_path / "stale.wal"
        checkpointed_search(db, query, path)
        with pytest.raises(CheckpointError, match="different search"):
            checkpointed_search(db, query, path, resume=True,
                                gaps=GapPenalty(rho=10, sigma=1))

    def test_group_geometry_mismatch_refused(self, db, query, tmp_path):
        path = tmp_path / "geometry.wal"
        checkpointed_search(db, query, path)
        # Same DB and query, different group size: the fingerprint
        # changes, so the journal must be rejected before any group
        # record is even read.
        with pytest.raises(CheckpointError, match="different search"):
            checkpointed_search(db, query, path, resume=True, group_size=8)

    def test_content_hash_mismatch_refused(self, db, query, tmp_path):
        path = tmp_path / "edited.wal"
        groups = pack_database(db, 4)
        fp = self.fingerprint(db, query)
        # Journal a record for index 1 carrying group 0's lanes: the
        # framing and CRC are valid, but the stored content digest
        # cannot match the packed database — the stale-database case.
        with CheckpointJournal.create(path, fp, len(groups)) as journal:
            journal.append(1, groups[0], np.zeros(groups[1].size,
                                                  dtype=np.int64))
        with pytest.raises(CheckpointError, match="content hash"):
            CheckpointJournal.resume(path, fp, groups)

    def test_resume_requires_checkpoint_path(self, db, query):
        with pytest.raises(ValueError, match="checkpoint"):
            BatchedEngine(BLOSUM62, GP, group_size=4).search(
                query, db, resume=True
            )


class TestHashing:
    def test_fingerprint_sensitivity(self, db, query):
        base = search_fingerprint(
            np.asarray(query.codes), BLOSUM62, GP, 4, db
        )
        assert base == search_fingerprint(
            np.asarray(query.codes), BLOSUM62, GP, 4, db
        )
        assert base != search_fingerprint(
            np.asarray(query.codes), BLOSUM62, GP, 8, db
        )
        assert base != search_fingerprint(
            np.asarray(query.codes), BLOSUM62, GP, 4, db, budget_bytes=1 << 20
        )
        assert base != search_fingerprint(
            np.asarray(query.codes), BLOSUM62,
            GapPenalty(rho=12, sigma=1), 4, db,
        )

    def test_group_hash_sensitivity(self, db):
        groups = pack_database(db, 4)
        digests = {group_content_hash(g) for g in groups}
        assert len(digests) == len(groups)  # all distinct
        assert all(len(d) == 16 for d in digests)


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "scores.tsv"
        out = atomic_write_text(target, "hello\n")
        assert out == target
        assert target.read_text() == "hello\n"

    def test_overwrites_atomically_leaving_no_temp(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_text(target, "v1")
        atomic_write_text(target, "v2")
        assert target.read_text() == "v2"
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]
