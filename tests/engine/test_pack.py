"""Tests for the group packer and its padding-waste accounting."""

import numpy as np
import pytest

from repro.engine import pack_database, pack_group
from repro.engine.pack import PackedGroup
from repro.sequence import Database, Sequence
from repro.sequence.database import SequenceGroup


@pytest.fixture()
def db():
    rng = np.random.default_rng(0)
    lengths = [30, 5, 12, 5, 44, 7, 19, 3]
    return Database.from_sequences(
        [Sequence.random(f"s{i}", n, rng) for i, n in enumerate(lengths)]
    )


class TestPackGroup:
    def test_rows_hold_codes_then_pad(self, db):
        packed = pack_group(db, np.array([1, 4, 7]))
        assert packed.codes.shape == (3, 44)
        assert packed.pad_code == db.alphabet.size
        for lane, src in enumerate([1, 4, 7]):
            n = int(db.lengths[src])
            assert np.array_equal(packed.codes[lane, :n], db.codes_of(src))
            assert np.all(packed.codes[lane, n:] == packed.pad_code)

    def test_padding_efficiency_matches_sequence_group(self, db):
        idx = np.array([0, 2, 6])
        packed = pack_group(db, idx)
        group = SequenceGroup(idx, db.lengths[idx])
        assert packed.padding_efficiency == pytest.approx(
            group.load_balance_efficiency
        )
        assert packed.residues == group.total_residues
        assert packed.padded_cells == packed.size * packed.max_length

    def test_codes_are_read_only(self, db):
        packed = pack_group(db, np.array([0, 1]))
        with pytest.raises(ValueError):
            packed.codes[0, 0] = 1

    def test_rejects_empty_selection(self, db):
        with pytest.raises(ValueError):
            pack_group(db, np.array([], dtype=np.int64))

    def test_rejects_lengths_only_database(self):
        lengths_only = Database.from_lengths([10, 20, 30])
        with pytest.raises(ValueError, match="lengths-only"):
            pack_group(lengths_only, np.array([0, 1]))

    def test_validation_of_inconsistent_fields(self, db):
        packed = pack_group(db, np.array([0, 1]))
        with pytest.raises(ValueError):
            PackedGroup(
                packed.indices[:1], packed.lengths, packed.codes,
                packed.pad_code,
            )
        with pytest.raises(ValueError):
            PackedGroup(
                packed.indices, packed.lengths, packed.codes[:, :-1],
                packed.pad_code,
            )


class TestPackDatabase:
    def test_groups_are_length_sorted(self, db):
        groups = pack_database(db, group_size=3)
        assert [g.size for g in groups] == [3, 3, 2]
        flat = np.concatenate([g.lengths for g in groups])
        assert np.array_equal(flat, np.sort(db.lengths, kind="stable"))

    def test_indices_cover_database_exactly_once(self, db):
        groups = pack_database(db, group_size=3)
        flat = np.concatenate([g.indices for g in groups])
        assert np.array_equal(np.sort(flat), np.arange(len(db)))

    def test_sorting_tightens_padding(self, db):
        """Length sorting is the whole point: packed rectangles must not
        be looser than the unsorted-order packing."""
        sorted_eff = _aggregate_eff(pack_database(db, 4))
        unsorted_groups = [
            pack_group(db, np.arange(0, 4)),
            pack_group(db, np.arange(4, 8)),
        ]
        assert sorted_eff >= _aggregate_eff(unsorted_groups)

    def test_group_size_validation(self, db):
        with pytest.raises(ValueError):
            pack_database(db, 0)


def _aggregate_eff(groups):
    return sum(g.residues for g in groups) / sum(
        g.padded_cells for g in groups
    )
