"""Golden-value regression guards for the calibrated model.

The model's headline numbers are the contract EXPERIMENTS.md documents.
These tests freeze them (with generous tolerances) so an accidental
change to a kernel count formula, a device spec or the calibration cannot
silently shift every reproduced exhibit.  An *intentional* recalibration
should update both these goldens and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.app import CudaSW
from repro.cuda import CostModel, KernelCounts, TESLA_C1060, TESLA_C2050
from repro.kernels import ImprovedIntraTaskKernel, OriginalIntraTaskKernel
from repro.sequence import SWISSPROT_PROFILE


@pytest.fixture(scope="module")
def swissprot():
    rng = np.random.default_rng(42)
    return SWISSPROT_PROFILE.build(rng)


@pytest.fixture(scope="module")
def intra_lengths(swissprot):
    _, above = swissprot.split_by_threshold(3072)
    return above.lengths


def kernel_gcups(kernel, lengths, device, m=567):
    counts = kernel.bulk_pair_counts(m, lengths)
    t = CostModel(device).kernel_time(
        counts,
        kernel.launch_config(int(lengths.size)),
        kernel.cache_profile(m, int(lengths.mean())),
    )
    return counts.cells / t.total / 1e9


class TestKernelAnchors:
    """The four calibration anchors (Section II-C of the paper)."""

    def test_original_intra_c1060(self, intra_lengths):
        g = kernel_gcups(OriginalIntraTaskKernel(), intra_lengths, TESLA_C1060)
        assert g == pytest.approx(1.9, abs=0.5)  # paper: ~1.5

    def test_improved_intra_c1060(self, intra_lengths):
        g = kernel_gcups(ImprovedIntraTaskKernel(), intra_lengths, TESLA_C1060)
        assert g == pytest.approx(15.5, abs=2.5)

    def test_improvement_factor(self, intra_lengths):
        ratio = kernel_gcups(
            ImprovedIntraTaskKernel(), intra_lengths, TESLA_C1060
        ) / kernel_gcups(OriginalIntraTaskKernel(), intra_lengths, TESLA_C1060)
        assert 6.0 < ratio < 14.0  # paper: "over 11 times"

    def test_original_intra_c2050_cached(self, intra_lengths):
        g = kernel_gcups(OriginalIntraTaskKernel(), intra_lengths, TESLA_C2050)
        assert g == pytest.approx(5.8, abs=1.5)


class TestApplicationGoldens:
    """End-to-end Swiss-Prot numbers at the default threshold."""

    EXPECTED = {
        ("C1060", "original"): 14.8,
        ("C1060", "improved"): 17.3,
        ("C2050", "original"): 19.5,
        ("C2050", "improved"): 20.5,
    }

    @pytest.mark.parametrize("key", sorted(EXPECTED))
    def test_overall_gcups(self, swissprot, key):
        dev_name, kernel = key
        device = TESLA_C1060 if dev_name == "C1060" else TESLA_C2050
        g = CudaSW(device, intra_kernel=kernel).predict(567, swissprot).gcups
        assert g == pytest.approx(self.EXPECTED[key], rel=0.15), key

    def test_intra_time_fraction_original(self, swissprot):
        r = CudaSW(TESLA_C1060, intra_kernel="original").predict(567, swissprot)
        assert r.intra_time_fraction == pytest.approx(0.16, abs=0.06)

    def test_transfer_time_negligible(self, swissprot):
        r = CudaSW(TESLA_C1060).predict(567, swissprot)
        assert r.transfer_time < 0.02 * r.total_time


class TestCountGoldens:
    """Structural constants the docs quote."""

    def test_original_bytes_per_cell(self):
        c = OriginalIntraTaskKernel().pair_counts(567, 4424)
        assert c.global_bytes / c.cells == pytest.approx(32.0)

    def test_improved_boundary_bytes(self):
        k = ImprovedIntraTaskKernel()
        c = k.pair_counts(5 * 1024, 2000)
        boundary_bytes = 2 * 2 * 2000 * 4 * (5 - 1)  # ld+st, H+F, per column
        overhead = (16 + 6) * 4
        assert c.global_bytes == boundary_bytes + overhead

    def test_peak_issue_rates(self):
        assert TESLA_C1060.instruction_throughput_per_second == pytest.approx(
            311.04e9
        )
        assert TESLA_C2050.instruction_throughput_per_second == pytest.approx(
            515.2e9
        )

    def test_zero_counts_time(self):
        t = CostModel(TESLA_C1060).kernel_time(
            KernelCounts(), OriginalIntraTaskKernel().launch_config(1)
        )
        assert t.total == pytest.approx(8e-6)  # launch overhead only
