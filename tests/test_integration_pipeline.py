"""End-to-end pipeline integration tests.

Each test walks a realistic user journey across several subsystems and
checks the cross-cutting invariants no unit test sees: functional scores
vs kernel simulators vs baselines on the same database, report accounting
consistency, and serialization in the middle of a workflow.
"""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.app import CudaSW, predict_batch
from repro.baselines import BlastLikeSearcher, Swps3Model
from repro.cuda import TESLA_C1060, TESLA_C2050
from repro.kernels import ImprovedIntraTaskKernel, ImprovedKernelConfig
from repro.sequence import (
    Database,
    evolve,
    plant_motif,
    random_protein,
)
from repro.stats import ScoreStatistics, annotate_hits

GP = GapPenalty.cudasw_default()


@pytest.fixture(scope="module")
def workload():
    """A query, one strong homolog, one weak homolog, decoys — with one
    sequence long enough to cross the (lowered) dispatch threshold."""
    rng = np.random.default_rng(0)
    query = random_protein(90, rng, id="query")
    strong, _ = plant_motif(query, 400, rng, id="strong")
    diverged = evolve(query, rng, substitution_rate=0.4, indel_rate=0.03)
    weak, _ = plant_motif(diverged, 350, rng, id="weak")
    long_decoy = random_protein(900, rng, id="long_decoy")
    decoys = [random_protein(250, rng, id=f"decoy{i}") for i in range(4)]
    db = Database.from_sequences([strong, weak, long_decoy, *decoys])
    return query, db


class TestCrossSystemAgreement:
    def test_app_swps3_and_kernels_agree(self, workload):
        query, db = workload
        app = CudaSW(
            TESLA_C1060,
            intra_kernel=ImprovedIntraTaskKernel(
                ImprovedKernelConfig(threads_per_block=32), TESLA_C1060
            ),
            threshold=500,  # force the long decoy through intra-task
        )
        reference, report = app.search(query, db)
        simulated, _ = app.search(query, db, simulate_kernels=True)
        swps3_scores, _ = Swps3Model().search(query, db)

        assert np.array_equal(reference.scores, simulated.scores)
        assert np.array_equal(reference.scores, swps3_scores)
        assert report.n_intra_sequences == 1  # the 900-residue decoy

    def test_heuristic_lower_bounds_everyone(self, workload):
        query, db = workload
        app = CudaSW(TESLA_C1060)
        exact, _ = app.search(query, db)
        heuristic = BlastLikeSearcher(query).search(db)
        assert np.all(heuristic <= exact.scores)
        # And it still ranks the strong homolog first.
        assert int(np.argmax(heuristic)) == 0

    def test_statistics_rank_by_relationship(self, workload):
        query, db = workload
        app = CudaSW(TESLA_C1060)
        result, _ = app.search(query, db)
        stats = ScoreStatistics(BLOSUM62, GP)
        hits = annotate_hits(result, stats, len(query), k=3)
        assert [h.hit.id for h in hits[:2]] == ["strong", "weak"]
        assert hits[0].evalue < hits[1].evalue < 1e-3


class TestReportAccounting:
    def test_counts_and_times_are_consistent(self, workload):
        query, db = workload
        app = CudaSW(TESLA_C1060, threshold=500)
        _, report = app.search(query, db)
        assert report.n_inter_sequences + report.n_intra_sequences == len(db)
        assert report.total_time == pytest.approx(
            report.inter_time + report.intra_time + report.transfer_time
        )
        assert (
            report.inter_counts.cells + report.intra_counts.cells
            <= report.total_cells
        )
        # Padded issue slots exceed useful cells on both sides.
        assert report.inter_counts.idle_thread_steps >= 0
        assert report.intra_counts.idle_thread_steps >= 0

    def test_batch_matches_individual_predictions(self, workload):
        _, db = workload
        app = CudaSW(TESLA_C1060)
        batch = predict_batch(app, [90, 200], db)
        solo = [app.predict(m, db) for m in (90, 200)]
        for b, s in zip(batch.reports, solo):
            assert b.total_time == pytest.approx(s.total_time)


class TestSerializationMidPipeline:
    def test_save_search_load_search(self, workload, tmp_path):
        from repro.sequence.serialize import load_database, save_database

        query, db = workload
        app = CudaSW(TESLA_C2050)
        before, _ = app.search(query, db)
        path = tmp_path / "workload.npz"
        save_database(db, path)
        after, _ = app.search(query, load_database(path))
        assert np.array_equal(before.scores, after.scores)


class TestDeviceConsistency:
    def test_same_scores_any_device_different_times(self, workload):
        """Devices change the clock, never the mathematics."""
        query, db = workload
        r1, t1 = CudaSW(TESLA_C1060).search(query, db)
        r2, t2 = CudaSW(TESLA_C2050).search(query, db)
        assert np.array_equal(r1.scores, r2.scores)
        assert t1.total_time != t2.total_time
