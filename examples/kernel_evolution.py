#!/usr/bin/env python
"""Walk the paper's Section III: how the improved kernel was built.

Shows, stage by stage, what the nvcc resource model decides and what each
incremental fix buys — the shallow-swap pitfall, the texture-blocked loop
unrolling, the packed query profile — ending with the parameter-space
exploration that picks the strip height.

Run:  python examples/kernel_evolution.py
"""

from repro.analysis import ablation_variants, param_exploration
from repro.cuda import TESLA_C1060
from repro.kernels import VARIANT_LADDER, variant_kernel


def main() -> None:
    print("=== the nvcc model's verdict per development stage ===\n")
    for name in VARIANT_LADDER:
        kernel = variant_kernel(name, TESLA_C1060)
        compiled = kernel.compiled
        print(f"{name}:")
        print(f"  registers/thread: {compiled.registers_per_thread}")
        print(f"  unrolled loops:   {list(compiled.unrolled_loops) or 'none'}")
        if compiled.uses_local_memory:
            for array, reason in sorted(compiled.demotion_reasons.items()):
                print(f"  {array} -> local memory: {reason}")
        else:
            print("  all tile state register-resident")
        print()

    print("=== what each stage is worth (Swiss-Prot intra subset) ===\n")
    print(ablation_variants().render())

    print("\n=== Section IV-A: picking n_th and t_height ===\n")
    print(param_exploration().render())


if __name__ == "__main__":
    main()
