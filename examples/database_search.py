#!/usr/bin/env python
"""Swiss-Prot-scale database search: original vs improved CUDASW++.

Builds the full-scale Swiss-Prot stand-in (516k sequences, lengths only —
the performance path never needs residues), then models the end-to-end
search with the original and the improved intra-task kernel on both
devices, reproducing the headline comparison of the paper.

Run:  python examples/database_search.py
"""

import numpy as np

from repro.app import CudaSW
from repro.cuda import TESLA_C1060, TESLA_C2050
from repro.sequence import SWISSPROT_PROFILE

QUERY_LENGTHS = (144, 567, 2005, 5478)


def main() -> None:
    rng = np.random.default_rng(0)
    db = SWISSPROT_PROFILE.build(rng)
    stats = db.stats()
    print(f"database: {db.name}")
    print(f"  {stats}")
    print(f"  {100 * db.fraction_over(3072):.2f}% of sequences over the "
          "default threshold (paper: 0.12%)\n")

    header = f"{'device':<12} {'kernel':<9} " + "".join(
        f"q={m:<7}" for m in QUERY_LENGTHS
    )
    print(header)
    print("-" * len(header))
    for device in (TESLA_C1060, TESLA_C2050):
        gcups = {}
        for kernel in ("original", "improved"):
            app = CudaSW(device, intra_kernel=kernel)
            gcups[kernel] = [
                app.predict(m, db).gcups for m in QUERY_LENGTHS
            ]
            row = "".join(f"{g:<9.2f}" for g in gcups[kernel])
            print(f"{device.name:<12} {kernel:<9} {row}")
        gains = [
            100 * (i / o - 1)
            for i, o in zip(gcups["improved"], gcups["original"])
        ]
        print(f"{'':<12} {'gain':<9} "
              + "".join(f"+{g:<8.1f}" for g in gains))
    print("\n(the paper reports ~25% overall gain on Swiss-Prot at the "
          "default threshold on the C1060)")

    # Where does the time go?  The Figure 5(b) quantity:
    print("\nintra-task share of running time (query 567):")
    for kernel in ("original", "improved"):
        r = CudaSW(TESLA_C1060, intra_kernel=kernel).predict(567, db)
        print(f"  {kernel:<9} {100 * r.intra_time_fraction:5.1f}% "
              f"({r.n_intra_sequences} sequences, "
              f"{r.intra_counts.global_transactions:,} global transactions)")


if __name__ == "__main__":
    main()
