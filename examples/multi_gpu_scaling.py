#!/usr/bin/env python
"""Multi-GPU scaling and the schedulers behind it (Section IV-B).

"The kernel tasks are independent, and thus the running time will scale
almost linearly with the number of GPUs available."  This example models
1/2/4/8-GPU searches on Swiss-Prot, compares the naive group-dealing
shard against the LPT scheduler the library uses, and draws the scaling
curve as an ASCII chart.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.analysis.plot import ascii_chart, bar_chart
from repro.app import CudaSW, multi_gpu_time
from repro.app.multigpu import inter_task_group_size, split_lpt, split_round_robin
from repro.cuda import TESLA_C2050
from repro.sequence import SWISSPROT_PROFILE


def main() -> None:
    rng = np.random.default_rng(0)
    db = SWISSPROT_PROFILE.build(rng)
    app = CudaSW(TESLA_C2050, intra_kernel="improved")
    t1 = app.predict(567, db).total_time

    gpus = [1, 2, 4, 8]
    speedups = [1.0]
    for g in gpus[1:]:
        tn, _ = multi_gpu_time(app, 567, db, g)
        speedups.append(t1 / tn)

    print("=== scaling on Swiss-Prot (query 567, Tesla C2050) ===\n")
    print(ascii_chart(
        gpus,
        {"measured": speedups, "ideal": [float(g) for g in gpus]},
        width=40, height=12, x_label="GPUs", y_label="speedup",
    ))
    print()
    for g, s in zip(gpus, speedups):
        print(f"  {g} GPU(s): {s:.2f}x ({100 * s / g:.0f}% efficiency)")

    # ------------------------------------------------------------------
    print("\n=== why the scheduler matters (4 GPUs) ===\n")
    s = inter_task_group_size(app)
    naive = max(
        app.predict(567, shard).total_time
        for shard in split_round_robin(db, 4, block_size=s)
    )
    lpt = max(
        app.predict(567, shard).total_time
        for shard in split_lpt(db, 4, block_size=s, threshold=app.threshold)
    )
    print(bar_chart(
        ["single GPU", "4 GPUs, naive group dealing", "4 GPUs, LPT"],
        [t1, naive, lpt],
        unit=" s",
    ))
    print("\nnaive dealing strands the sorted tail groups (and every "
          "intra-task pair) on one card; LPT balances them by estimated "
          "launch cost")


if __name__ == "__main__":
    main()
