#!/usr/bin/env python
"""Score statistics: from raw Smith-Waterman scores to E-values.

Shows the Karlin-Altschul machinery at work: the scoring system's
(lambda, K, H), how raw scores translate into bit scores and E-values,
and how the significance threshold separates an evolved homolog from
chance hits in a database search.

Run:  python examples/significance_statistics.py
"""

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty
from repro.app import CudaSW
from repro.cuda import TESLA_C1060
from repro.sequence import Database, evolve, plant_motif, random_protein
from repro.stats import ScoreStatistics, annotate_hits


def main() -> None:
    rng = np.random.default_rng(0)
    gaps = GapPenalty.cudasw_default()
    stats = ScoreStatistics(BLOSUM62, gaps)
    p = stats.parameters
    print("=== the scoring system (BLOSUM62, gap open 10 / extend 2) ===\n")
    print(f"  lambda = {p.lam:.4f}   (ungapped BLOSUM62 published: ~0.3176)")
    print(f"  K      = {p.k:.4f}   (empirically calibrated)")
    print(f"  H      = {p.h:.3f} bits per aligned column\n")

    m, db_residues = 200, 50_000_000
    print(f"raw score -> significance (query {m} aa, {db_residues:,} residue "
          "database):")
    for s in (40, 60, 80, 100, 150):
        print(f"  S={s:>4}  bits={p.bit_score(s):6.1f}  "
              f"E={p.evalue(s, m, db_residues):10.3g}")
    cutoff = stats.significance_threshold(m, db_residues, evalue=1e-3)
    print(f"\nscore needed for E <= 1e-3: {cutoff}\n")

    # ------------------------------------------------------------------
    print("=== search: one evolved homolog among decoys ===\n")
    query = random_protein(m, rng, id="query")
    diverged = evolve(query, rng, substitution_rate=0.35, indel_rate=0.03)
    homolog, _ = plant_motif(diverged, 600, rng, id="distant_homolog")
    decoys = [random_protein(600, rng, id=f"decoy{i}") for i in range(12)]
    db = Database.from_sequences([homolog, *decoys])

    result, _ = CudaSW(TESLA_C1060).search(query, db)
    annotated = annotate_hits(result, stats, m, k=5)
    print(f"{'hit':<18} {'score':>6} {'bits':>7} {'E-value':>10} verdict")
    for a in annotated:
        verdict = "significant" if a.evalue < 1e-3 else "chance-level"
        print(f"{a.hit.id:<18} {a.hit.score:>6} {a.bit_score:>7.1f} "
              f"{a.evalue:>10.2g} {verdict}")
    print("\n35% diverged, yet unambiguously separated from every decoy — "
          "the reason exact SW (and making it fast) matters.")


if __name__ == "__main__":
    main()
