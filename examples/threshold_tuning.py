#!/usr/bin/env python
"""Automatic dispatch-threshold detection (the paper's Section VI).

For each of the paper's six databases, sweeps candidate thresholds with
the cost model and reports the detected optimum next to the default 3072
— reproducing the TAIR observation (threshold 1500 gains ~4 GCUPs with
the improved kernel on the C2050) and generalizing it.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro.app import CudaSW, optimal_threshold
from repro.cuda import TESLA_C2050
from repro.sequence import PAPER_DATABASES

QUERY_LENGTH = 567


def main() -> None:
    rng = np.random.default_rng(0)
    print(
        f"{'database':<28} {'%>3072':>7} {'default':>8} {'auto thr':>9} "
        f"{'auto':>7} {'gain':>7}"
    )
    print("-" * 72)
    for profile in PAPER_DATABASES:
        db = profile.build(rng)
        app = CudaSW(TESLA_C2050, intra_kernel="improved")
        default = app.predict(QUERY_LENGTH, db)
        best = optimal_threshold(app, QUERY_LENGTH, db)
        gain = 100 * (best.gcups / default.gcups - 1)
        print(
            f"{profile.name:<28} "
            f"{100 * profile.frac_over_threshold:>6.2f}% "
            f"{default.gcups:>8.2f} {best.threshold:>9} "
            f"{best.gcups:>7.2f} {gain:>+6.1f}%"
        )
    print(
        "\nthe paper's TAIR experiment: lowering 3072 -> 1500 gained "
        "~4 GCUPs; 'we can gain similar performance increases in almost "
        "all databases by lowering the threshold' (Section IV-B)"
    )


if __name__ == "__main__":
    main()
