#!/usr/bin/env python
"""GPU vs SIMD-CPU vs heuristic: the introduction's three-way framing.

1. exact Smith-Waterman on the GPU model (CUDASW++ improved kernel);
2. exact Smith-Waterman on SIMD CPUs (the SWPS3 / Farrar striped model,
   verified bit-identical to the reference);
3. the BLAST-like heuristic — fast but without the optimality guarantee,
   which this example demonstrates concretely on a mutated homolog.

Run:  python examples/swps3_comparison.py
"""

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty
from repro.app import CudaSW
from repro.baselines import BlastLikeSearcher, Swps3Model
from repro.cuda import TESLA_C2050
from repro.sequence import Database, SWISSPROT_PROFILE, Sequence, random_protein
from repro.sw import smith_waterman


def throughput_comparison() -> None:
    rng = np.random.default_rng(0)
    db = SWISSPROT_PROFILE.build(rng)
    print("=== modeled throughput on Swiss-Prot (query 567) ===\n")
    gpu = CudaSW(TESLA_C2050, intra_kernel="improved").predict(567, db)
    swps3 = Swps3Model().report(567, db, rng)
    print(f"  CUDASW++ improved / Tesla C2050 : {gpu.gcups:6.2f} GCUPs")
    print(f"  SWPS3 / 4-core Xeon 2.33 GHz    : {swps3.gcups:6.2f} GCUPs")
    print(f"  ratio                           : {gpu.gcups / swps3.gcups:.1f}x")
    print(f"  (SWPS3 lazy-F share of row work : {swps3.lazy_fraction:.2%})\n")


def optimality_comparison() -> None:
    rng = np.random.default_rng(1)
    gaps = GapPenalty.cudasw_default()
    print("=== exactness: SW always finds the optimum; BLAST may not ===\n")

    core = random_protein(70, rng, id="core")
    mutated = core.codes.copy()
    pos = rng.choice(70, size=14, replace=False)  # 20% mutated
    mutated[pos] = rng.integers(0, 20, size=14)
    query = Sequence(
        "query",
        np.concatenate([random_protein(25, rng).codes, core.codes,
                        random_protein(25, rng).codes]),
    )
    subject = Sequence(
        "distant_homolog",
        np.concatenate([random_protein(60, rng).codes, mutated,
                        random_protein(60, rng).codes]),
    )
    decoys = [random_protein(180, rng, id=f"decoy{i}") for i in range(4)]
    db = Database.from_sequences([subject, *decoys])

    exact, _ = CudaSW(TESLA_C2050).search(query, db)
    heuristic = BlastLikeSearcher(query).search(db)
    swps3_scores, _ = Swps3Model().search(query, db)

    print(f"{'sequence':<18} {'exact SW':>9} {'SWPS3':>7} {'BLAST-like':>11}")
    for i in range(len(db)):
        print(
            f"{db.id_of(i):<18} {exact.scores[i]:>9} "
            f"{swps3_scores[i]:>7} {heuristic[i]:>11}"
        )
    assert np.array_equal(exact.scores, swps3_scores)
    print("\nSWPS3 (exact algorithm) matches SW everywhere; the heuristic "
          "lower-bounds it" )
    direct = smith_waterman(query, subject, BLOSUM62, gaps)
    print(f"homolog: exact {direct}, heuristic {heuristic[0]} "
          f"({100 * heuristic[0] / direct:.0f}% of the optimum recovered)")


if __name__ == "__main__":
    throughput_comparison()
    optimality_comparison()
