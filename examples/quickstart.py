#!/usr/bin/env python
"""Quickstart: align two sequences, search a small database, read the hits.

Covers the three things most users come for:

1. an exact Smith-Waterman score and alignment between two proteins;
2. a CUDASW++-style database search (functional mode) with ranked hits;
3. the modeled performance report of the same search on the two GPUs of
   the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty
from repro.app import CudaSW
from repro.cuda import TESLA_C1060, TESLA_C2050
from repro.sequence import Database, Sequence, random_protein
from repro.sw import smith_waterman, sw_align


def main() -> None:
    rng = np.random.default_rng(7)
    gaps = GapPenalty.cudasw_default()  # gap open 10, extend 2

    # ------------------------------------------------------------------
    # 1. Pairwise alignment
    # ------------------------------------------------------------------
    query = Sequence.from_text(
        "demo_query", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ"
    )
    subject = Sequence.from_text(
        "demo_subject", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQD"
        "NLSGAEKAVQVKVKALPDAQFEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLS"
    )
    score = smith_waterman(query, subject, BLOSUM62, gaps)
    print(f"Smith-Waterman score({query.id}, {subject.id}) = {score}\n")

    alignment = sw_align(query, subject, BLOSUM62, gaps)
    print(alignment.pretty(BLOSUM62))
    print(f"cigar: {alignment.cigar}\n")

    # ------------------------------------------------------------------
    # 2. Database search (functional: every score actually computed)
    # ------------------------------------------------------------------
    homolog = Sequence(
        "planted_homolog",
        np.concatenate(
            [random_protein(40, rng).codes, query.codes,
             random_protein(60, rng).codes]
        ),
    )
    decoys = [random_protein(int(n), rng, id=f"decoy_{i}")
              for i, n in enumerate(rng.integers(80, 400, size=8))]
    db = Database.from_sequences([homolog, *decoys], name="demo-db")

    app = CudaSW(TESLA_C1060)  # improved intra-task kernel by default
    result, report = app.search(query, db)  # batched lanes engine by default
    print("top hits:")
    for hit in result.top(3):
        print(f"  {hit.id:<18} length={hit.length:<5} score={hit.score}")
    er = app.last_engine_report
    print(
        f"(batched engine: {er.n_groups} group(s), "
        f"padding efficiency {er.padding_efficiency:.2f})"
    )

    # ------------------------------------------------------------------
    # 3. Modeled performance on the paper's GPUs
    # ------------------------------------------------------------------
    print("\nmodeled performance of this search:")
    for device in (TESLA_C1060, TESLA_C2050):
        r = CudaSW(device).predict(len(query), db)
        print(
            f"  {device.name:<12} {r.gcups:6.2f} GCUPs "
            f"({r.n_inter_sequences} inter-task, "
            f"{r.n_intra_sequences} intra-task sequences)"
        )


if __name__ == "__main__":
    main()
